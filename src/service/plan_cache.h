// PlanCache — the two-tier memoization store behind the PlannerService.
//
//   tier 1: a sharded in-memory LRU. Keys stripe across independent
//           mutex-guarded segments (digest % stripes), so concurrent
//           requests for different keys never contend on one lock.
//   tier 2: an optional on-disk store (one JSON file per key under
//           `disk_dir`, named by the key's version-prefixed hex). Disk
//           payloads round-trip through core/serialize's PlanRecord, whose
//           version field is checked BEFORE the body is interpreted: cache
//           files written by older code (or corrupted on disk) are
//           rejected and counted, never deserialized into garbage.
//
// A disk hit is promoted into the memory tier; an insert writes both
// tiers (the disk write is atomic: temp file + rename, so a crashed or
// concurrent writer can never leave a torn file behind).
//
// Robustness (ISSUE 5): transient disk I/O failures (fault sites
// cache.disk.read / cache.disk.write / cache.disk.rename) are retried
// with linear backoff and counted (`cache.retry`); a file that parses as
// garbage is renamed to `*.quarantine` once (`cache.quarantined`) so it
// is never re-parsed; stale `*.tmp` files from a crashed writer are swept
// at construction. Every degradation leaves the cache fully usable — the
// worst case is a re-search.
//
// Similarity tier (ISSUE 8): next to the exact tiers the cache keeps a
// GraphSketch per inserted key (its own LRU, sketch_capacity entries) and
// an inverted index from weighted family sub-fingerprint to keys.
// find_similar answers "which cached planning problem is nearest to this
// request" so the PlannerService can warm-start an incremental replan; a
// match touches the donor's memory-tier entry — and ONLY the donor's, so
// probed-but-rejected candidates never starve exact-hit recency.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/serialize.h"
#include "service/fingerprint.h"
#include "service/graph_delta.h"

namespace tap::service {

struct PlanCacheOptions {
  /// Total in-memory entries across all stripes (LRU beyond this).
  std::size_t capacity = 256;
  /// Mutex stripes for the memory tier.
  int stripes = 8;
  /// Directory of the disk tier; empty = memory-only.
  std::string disk_dir;
  /// Extra attempts after a transient disk I/O failure (so io_retries + 1
  /// attempts total). Retries apply ONLY to I/O errors — an absent file is
  /// a miss and a corrupt file is quarantined, neither is retried.
  int io_retries = 2;
  /// Backoff before retry k is k * retry_backoff_ms.
  double retry_backoff_ms = 1.0;
  /// Entries of the similarity tier's sketch store (its own LRU,
  /// independent of the record LRU — a warm start only needs the donor's
  /// FamilySearch outcomes, not its PlanRecord). 0 disables the tier.
  std::size_t sketch_capacity = 256;
};

struct PlanCacheStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t memory_misses = 0;  ///< both-tier lookups that missed tier 1
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;   ///< no file for the key
  std::uint64_t disk_rejects = 0;  ///< corrupt or version-mismatched file
  std::uint64_t disk_writes = 0;
  std::uint64_t retries = 0;      ///< disk I/O retry attempts
  std::uint64_t quarantined = 0;  ///< bad files renamed to *.quarantine
  std::uint64_t similarity_hits = 0;    ///< find_similar returned a donor
  std::uint64_t similarity_misses = 0;  ///< no candidate shared a family
};

/// A find_similar answer: the nearest cached key and its weighted-family
/// delta against the request.
struct SimilarityMatch {
  PlanKey key;
  GraphDelta delta;
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions opts = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Which tier answered a lookup (request-telemetry breadcrumb; the
  /// aggregate counts stay in PlanCacheStats).
  enum class Tier : std::uint8_t { kMiss, kMemory, kDisk };

  /// Memory tier first, then disk. `tg` validates a disk payload against
  /// the requesting graph. A disk hit is promoted to memory. `tier`
  /// (optional) reports which tier answered.
  std::optional<core::PlanRecord> lookup(const PlanKey& key,
                                         const ir::TapGraph& tg,
                                         Tier* tier = nullptr);

  /// Inserts into the memory tier and (when configured) writes the disk
  /// file atomically.
  void insert(const PlanKey& key, const core::PlanRecord& record,
              const ir::TapGraph& tg);

  /// Records `key`'s similarity sketch. Called on insert by the service
  /// (only complete results are inserted, so only complete results ever
  /// donate warm starts). Evicts the least-recently-matched sketch beyond
  /// sketch_capacity. No-op when the tier is disabled.
  void record_sketch(const PlanKey& key, const GraphSketch& sketch);

  /// Nearest cached key to `sketch`: the candidate sharing the most
  /// weighted family sub-fingerprints, ties broken by smallest key hex
  /// (deterministic under any insertion interleaving). Only keys with the
  /// same options fingerprint and sweep flag are candidates — family
  /// outcomes transfer only under identical options — and `request`
  /// itself is excluded. A match touches the donor's memory-tier LRU
  /// entry and sketch recency; probed candidates that lose the tie are
  /// NOT touched (similarity probes must not starve exact-hit recency).
  std::optional<SimilarityMatch> find_similar(const PlanKey& request,
                                              const GraphSketch& sketch);

  PlanCacheStats stats() const;

  /// Disk-tier file of `key`, or "" when the cache is memory-only.
  std::string disk_path(const PlanKey& key) const;

  const PlanCacheOptions& options() const { return opts_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<PlanKey, core::PlanRecord>> lru;
    std::unordered_map<PlanKey,
                       std::list<std::pair<PlanKey, core::PlanRecord>>::
                           iterator,
                       PlanKeyHash>
        index;
  };

  /// One sketch-store entry; `pos` points into sketch_order_ (front =
  /// most recently recorded or matched).
  struct SketchEntry {
    GraphSketch sketch;
    std::list<PlanKey>::iterator pos;
  };

  Stripe& stripe_for(const PlanKey& key);
  /// Counts one retry (stats + cache.retry metric) and sleeps the linear
  /// backoff for `attempt`.
  void count_retry(int attempt);
  /// Splices `key` to the front of its stripe's LRU if present (the
  /// donor-only touch of find_similar).
  void memory_touch(const PlanKey& key);
  /// Drops `key`'s inverted-index postings. Caller holds sketch_mu_.
  void unindex_sketch(const PlanKey& key, const GraphSketch& sketch);
  std::optional<core::PlanRecord> memory_lookup(const PlanKey& key);
  void memory_insert(const PlanKey& key, const core::PlanRecord& record);
  std::optional<core::PlanRecord> disk_lookup(const PlanKey& key,
                                              const ir::TapGraph& tg);
  void disk_insert(const PlanKey& key, const core::PlanRecord& record,
                   const ir::TapGraph& tg);

  PlanCacheOptions opts_;
  std::size_t stripe_capacity_ = 0;
  std::vector<Stripe> stripes_;

  // Similarity tier. One mutex (not striped): sketches are touched once
  // per cache-missing request, never on the exact-hit fast path.
  std::mutex sketch_mu_;
  std::list<PlanKey> sketch_order_;  ///< front = most recent
  std::unordered_map<PlanKey, SketchEntry, PlanKeyHash> sketches_;
  /// Weighted family sub-fingerprint digest -> keys whose sketch has it.
  std::unordered_map<std::uint64_t, std::vector<PlanKey>> sketch_index_;

  mutable std::mutex stats_mu_;
  PlanCacheStats stats_;
};

}  // namespace tap::service
