#include "service/wire.h"

#include <cstdio>
#include <utility>

#include "core/serialize.h"
#include "models/models.h"
#include "net/http.h"
#include "util/check.h"
#include "util/json.h"

namespace tap::service {

namespace {

/// Strict base-10 parse into int64 (whole token must be a number).
std::int64_t parse_wire_int(const std::string& field,
                            const std::string& value) {
  TAP_CHECK(!value.empty()) << "empty value for '" << field << "'";
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(value, &pos, 10);
  } catch (const std::exception&) {
    pos = 0;
  }
  TAP_CHECK(pos == value.size())
      << "bad value for '" << field << "': '" << value << "'";
  return static_cast<std::int64_t>(v);
}

void parse_mesh_string(const std::string& mesh, ModelSpec* spec) {
  if (mesh == "auto") {
    spec->dp = 0;
    spec->tp = 0;
    return;
  }
  int dp = 0, tp = 0;
  char trailing = '\0';
  TAP_CHECK(std::sscanf(mesh.c_str(), "%dx%d%c", &dp, &tp, &trailing) == 2 &&
            dp >= 1 && tp >= 1)
      << "bad mesh '" << mesh << "' (want DPxTP or auto)";
  spec->dp = dp;
  spec->tp = tp;
}

void validate(const ModelSpec& spec) {
  TAP_CHECK(known_model(spec.model))
      << "unknown model '" << spec.model
      << "' (want t5 | bert | gpt3 | resnet50 | resnet152 | moe)";
  TAP_CHECK(spec.layers >= 1) << "layers must be >= 1";
  TAP_CHECK(spec.classes >= 1) << "classes must be >= 1";
  TAP_CHECK(spec.batch >= 1) << "batch must be >= 1";
  TAP_CHECK(spec.nodes >= 1) << "nodes must be >= 1";
  TAP_CHECK(spec.gpus >= 1) << "gpus must be >= 1";
  TAP_CHECK(spec.deadline_ms >= 0) << "deadline_ms must be >= 0";
  TAP_CHECK((spec.dp >= 1 && spec.tp >= 1) || (spec.dp == 0 && spec.tp == 0))
      << "mesh must be DPxTP (both >= 1) or auto";
}

}  // namespace

bool known_model(const std::string& model) {
  return model == "t5" || model == "bert" || model == "gpt3" ||
         model == "resnet50" || model == "resnet152" || model == "moe";
}

ModelSpec model_spec_from_json(const std::string& json) {
  const util::JsonValue doc = util::JsonValue::parse(json);
  TAP_CHECK(doc.kind() == util::JsonValue::Kind::kObject)
      << "plan request must be a JSON object";
  ModelSpec spec;
  auto as_int = [](const std::string& key, const util::JsonValue& v) {
    TAP_CHECK(v.kind() == util::JsonValue::Kind::kNumber)
        << "'" << key << "' must be a number";
    return v.as_int();
  };
  for (const auto& [key, value] : doc.members()) {
    if (key == "model") {
      spec.model = value.as_string();
    } else if (key == "layers") {
      spec.layers = static_cast<int>(as_int(key, value));
    } else if (key == "classes") {
      spec.classes = as_int(key, value);
    } else if (key == "batch") {
      spec.batch = as_int(key, value);
    } else if (key == "nodes") {
      spec.nodes = static_cast<int>(as_int(key, value));
    } else if (key == "gpus") {
      spec.gpus = static_cast<int>(as_int(key, value));
    } else if (key == "deadline_ms") {
      spec.deadline_ms = as_int(key, value);
    } else if (key == "mesh") {
      if (value.kind() == util::JsonValue::Kind::kString) {
        parse_mesh_string(value.as_string(), &spec);
      } else {
        TAP_CHECK(value.kind() == util::JsonValue::Kind::kArray &&
                  value.items().size() == 2)
            << "'mesh' must be \"auto\", \"DPxTP\", or [dp, tp]";
        spec.dp = static_cast<int>(as_int(key, value.items()[0]));
        spec.tp = static_cast<int>(as_int(key, value.items()[1]));
      }
    } else {
      // Strict by design: a typo'd knob must fail loudly, not silently
      // plan something else under the caller's nose.
      TAP_CHECK(false) << "unknown plan request key '" << key << "'";
    }
  }
  validate(spec);
  return spec;
}

ModelSpec model_spec_from_query(std::string_view target) {
  ModelSpec spec;
  auto param = [&](const char* key) { return net::query_param(target, key); };
  if (std::string v = param("model"); !v.empty()) spec.model = v;
  if (std::string v = param("layers"); !v.empty())
    spec.layers = static_cast<int>(parse_wire_int("layers", v));
  if (std::string v = param("classes"); !v.empty())
    spec.classes = parse_wire_int("classes", v);
  if (std::string v = param("batch"); !v.empty())
    spec.batch = parse_wire_int("batch", v);
  if (std::string v = param("nodes"); !v.empty())
    spec.nodes = static_cast<int>(parse_wire_int("nodes", v));
  if (std::string v = param("gpus"); !v.empty())
    spec.gpus = static_cast<int>(parse_wire_int("gpus", v));
  if (std::string v = param("deadline_ms"); !v.empty())
    spec.deadline_ms = parse_wire_int("deadline_ms", v);
  if (std::string v = param("mesh"); !v.empty()) parse_mesh_string(v, &spec);
  validate(spec);
  return spec;
}

std::string model_spec_to_json(const ModelSpec& spec) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("model", util::JsonValue::string(spec.model));
  doc.set("layers", util::JsonValue::number(spec.layers));
  doc.set("classes", util::JsonValue::number(
                         static_cast<double>(spec.classes)));
  doc.set("batch",
          util::JsonValue::number(static_cast<double>(spec.batch)));
  doc.set("nodes", util::JsonValue::number(spec.nodes));
  doc.set("gpus", util::JsonValue::number(spec.gpus));
  if (spec.sweep()) {
    doc.set("mesh", util::JsonValue::string("auto"));
  } else {
    util::JsonValue mesh = util::JsonValue::array();
    mesh.push_back(util::JsonValue::number(spec.dp));
    mesh.push_back(util::JsonValue::number(spec.tp));
    doc.set("mesh", std::move(mesh));
  }
  doc.set("deadline_ms", util::JsonValue::number(
                             static_cast<double>(spec.deadline_ms)));
  return doc.dump();
}

Graph build_spec_model(const ModelSpec& spec) {
  using namespace tap::models;
  if (spec.model == "t5") {
    TransformerConfig cfg = t5_with_layers(spec.layers);
    cfg.batch = spec.batch;
    return build_transformer(cfg);
  }
  if (spec.model == "bert") {
    TransformerConfig cfg = bert_large();
    cfg.num_layers = spec.layers;
    cfg.batch = spec.batch;
    return build_transformer(cfg);
  }
  if (spec.model == "gpt3") {
    TransformerConfig cfg = gpt3();
    cfg.num_layers = spec.layers;
    return build_transformer(cfg);
  }
  if (spec.model == "resnet50" || spec.model == "resnet152") {
    ResNetConfig cfg = spec.model == "resnet50" ? resnet50(spec.classes)
                                                : resnet152(spec.classes);
    cfg.batch = spec.batch;
    return build_resnet(cfg);
  }
  TAP_CHECK(spec.model == "moe") << "unknown model '" << spec.model << "'";
  MoeConfig cfg = widenet();
  cfg.num_layers = spec.layers;
  cfg.batch = spec.batch;
  return build_moe_transformer(cfg);
}

core::TapOptions options_for_spec(const ModelSpec& spec, int threads) {
  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_cluster(spec.nodes);
  opts.cluster.gpus_per_node = spec.gpus;
  opts.threads = threads;
  opts.deadline_ms = spec.deadline_ms;
  if (!spec.sweep()) {
    opts.dp_replicas = spec.dp;
    opts.num_shards = spec.tp;
  }
  return opts;
}

std::string plan_response_json(const ir::TapGraph& tg, const PlanKey& key,
                               const core::TapResult& result) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("version", util::JsonValue::number(kPlanResponseVersion));
  doc.set("key", util::JsonValue::string(key.to_hex()));
  util::JsonValue mesh = util::JsonValue::array();
  mesh.push_back(util::JsonValue::number(result.best_plan.dp_replicas));
  mesh.push_back(util::JsonValue::number(result.best_plan.num_shards));
  doc.set("mesh", std::move(mesh));
  doc.set("provenance",
          util::JsonValue::string(
              core::plan_source_name(result.provenance.source)));
  doc.set("plan", util::JsonValue::parse(
                      core::plan_to_json(tg, result.best_plan)));
  util::JsonValue cost = util::JsonValue::object();
  cost.set("forward_comm_s",
           util::JsonValue::number(result.cost.forward_comm_s));
  cost.set("backward_comm_s",
           util::JsonValue::number(result.cost.backward_comm_s));
  cost.set("overlappable_comm_s",
           util::JsonValue::number(result.cost.overlappable_comm_s));
  cost.set("comm_bytes", util::JsonValue::number(
                             static_cast<double>(result.cost.comm_bytes)));
  cost.set("total_s", util::JsonValue::number(result.cost.total()));
  doc.set("cost", std::move(cost));
  util::JsonValue stats = util::JsonValue::object();
  stats.set("candidate_plans",
            util::JsonValue::number(
                static_cast<double>(result.candidate_plans)));
  stats.set("valid_plans", util::JsonValue::number(
                               static_cast<double>(result.valid_plans)));
  stats.set("nodes_visited",
            util::JsonValue::number(
                static_cast<double>(result.nodes_visited)));
  stats.set("cost_queries", util::JsonValue::number(
                                static_cast<double>(result.cost_queries)));
  doc.set("stats", std::move(stats));
  return doc.dump();
}

}  // namespace tap::service
