// The plan-serving wire protocol (ISSUE 7): how a planning problem is
// named over HTTP, and the canonical bytes a plan answer is spelled in.
//
// ModelSpec is the wire description of one planning problem — a zoo
// architecture plus the planning-relevant knobs tap_cli already exposes
// (mesh, cluster shape, deadline). It parses from the POST /plan JSON
// body or a GET /explain query string, builds the same Graph/TapOptions
// the CLI would build for the same flags, and therefore lands on the
// same PlanKey — which is what lets the CI smoke job compare server
// bytes against offline CLI bytes.
//
// plan_response_json is the determinism contract of the tier: it spells
// a TapResult using ONLY deterministic fields (key, mesh, provenance,
// by-name plan assignments, cost doubles, search statistics — never wall
// times), so for a complete plan the response bytes are a pure function
// of the PlanKey. Any shard, any transport, any cache tier: same key,
// same bytes. The net tests and the serve-smoke CI job enforce this
// byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/tap.h"
#include "graph/graph.h"
#include "service/fingerprint.h"

namespace tap::service {

/// Wire description of one planning problem. Defaults mirror tap_cli's.
struct ModelSpec {
  std::string model = "t5";  ///< t5|bert|gpt3|resnet50|resnet152|moe
  int layers = 8;
  std::int64_t classes = 1000;  ///< resnet head width
  std::int64_t batch = 16;
  int nodes = 2;  ///< cluster nodes
  int gpus = 8;   ///< GPUs per node
  /// Fixed mesh (dp x tp); 0 x 0 = automatic mesh sweep.
  int dp = 0;
  int tp = 0;
  /// Server-side latency budget; results under a tripped deadline are
  /// anytime/fallback and (like in-process) never cached.
  std::int64_t deadline_ms = 0;

  bool sweep() const { return dp <= 0 || tp <= 0; }
};

bool known_model(const std::string& model);

/// Parses the POST /plan body. Strict: unknown keys, unknown models,
/// non-positive dimensions, and malformed mesh values all throw
/// util::CheckError (the handler answers 400).
ModelSpec model_spec_from_json(const std::string& json);

/// Parses a GET query string ("?model=t5&layers=2&mesh=2x4&..."), same
/// strictness as the JSON form.
ModelSpec model_spec_from_query(std::string_view target);

/// Canonical JSON spelling (fixed key order) — what PlanClient sends.
std::string model_spec_to_json(const ModelSpec& spec);

/// Builds the zoo architecture the spec names (same construction as
/// tap_cli's flags).
Graph build_spec_model(const ModelSpec& spec);

/// TapOptions for the spec: cluster, mesh, deadline. `threads` is the
/// server's worker knob — bit-identity-neutral, never part of the spec.
core::TapOptions options_for_spec(const ModelSpec& spec, int threads);

/// Bump when the response layout changes; readers check it first.
inline constexpr int kPlanResponseVersion = 1;

/// Canonical plan-response JSON for a result planned under `key` —
/// deterministic fields only, so complete plans serialize to identical
/// bytes on every shard and transport:
///   {"version":1,"key":"v1-...","mesh":[dp,tp],
///    "provenance":"complete|anytime|fallback",
///    "plan":{...core::plan_to_json...},
///    "cost":{"forward_comm_s":..,"backward_comm_s":..,
///            "overlappable_comm_s":..,"comm_bytes":..,"total_s":..},
///    "stats":{"candidate_plans":..,"valid_plans":..,
///             "nodes_visited":..,"cost_queries":..}}
/// Incremental (warm-started) results spell "complete" here on purpose:
/// families_pinned is serving metadata, and pinned outcomes are
/// bit-identical to searched ones, so the response bytes for a key must
/// not depend on whether a warm start happened to fire. The zoo-wide
/// differential test (tests/test_delta.cpp) compares these bytes between
/// incremental and cold searches.
std::string plan_response_json(const ir::TapGraph& tg, const PlanKey& key,
                               const core::TapResult& result);

}  // namespace tap::service
