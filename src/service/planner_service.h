// PlannerService — the concurrent front end of the planner (ISSUE:
// plan-cache subsystem).
//
// A service owns a two-tier PlanCache (service/plan_cache.h), a
// family-outcome cache, and a util::ThreadPool of request workers.
// Clients submit PlanRequests and get back shared_futures of the exact
// TapResult a direct auto_parallel / auto_parallel_best_mesh call would
// produce — the planner is deterministic and the cache key captures every
// planning-relevant input (service/fingerprint.h), so serving from cache
// is bit-identical to searching, which the service tests enforce field by
// field.
//
// Request flow, under one mutex so the outcome is deterministic:
//   1. coalesce — an in-flight request with the same key returns the same
//      future (single-flight: N concurrent identical requests cost ONE
//      search, counted in ServiceStats::coalesced);
//   2. cache hit — the stored PlanRecord is re-materialized (deterministic
//      prune + route against the live graph) into a ready future;
//   3. miss — the key is registered in-flight and the search runs on the
//      pool. The completion order is: cache insert, THEN in-flight erase,
//      THEN promise fulfilment — so at every instant a duplicate request
//      finds either the in-flight entry or the cached record, never a gap.
//      Hence the invariant the tests assert: searches == distinct keys.
//
// On a whole-graph miss the service still reuses work at the family level:
// run_search installs a CachingFamilyPolicy, so a family whose fingerprint
// was already searched (e.g. the same encoder block in a deeper build of
// the model) is answered from memory instead of re-enumerated. This is the
// paper's depth-independence carried across *requests*, not just across
// instances within one graph.
//
// Incremental replanning (ISSUE 8): before a cache-missing search starts,
// the service sketches the request (service/fingerprint.h) and asks the
// PlanCache's similarity tier for the nearest cached donor. When one
// shares weighted families, the search runs with a FamilyCacheWarmStart:
// unaffected families are PINNED to their memoized outcomes (skipping
// enumeration entirely) and only changed families are re-searched. The
// result is bit-identical to a cold search — the fingerprint invariant
// guarantees pinned outcomes equal what the policy would produce — and is
// cached under its own exact key like any complete result. Provenance
// records families_pinned (serving metadata, excluded from plan/report
// JSON); service.incremental.* metrics count attempts/hits/pinned.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tap.h"
#include "report/report.h"
#include "service/fingerprint.h"
#include "service/plan_cache.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace tap::service {

/// Thrown by submit()/plan() when ServiceOptions::max_pending is set and
/// the request's admission bound is reached — load shedding at the front
/// door, so an overload fails fast instead of queueing unboundedly.
/// Counted in ServiceStats::shed / `service.shed`; carries the
/// Retry-After hint the HTTP handler surfaces with its 503.
class OverloadedError : public std::runtime_error {
 public:
  explicit OverloadedError(std::size_t pending,
                           double retry_after_ms = 1000.0)
      : std::runtime_error("PlannerService overloaded: " +
                           std::to_string(pending) +
                           " searches already pending"),
        retry_after_ms_(retry_after_ms) {}

  double retry_after_ms() const { return retry_after_ms_; }

 private:
  double retry_after_ms_;
};

/// One planning request. The graph is borrowed: the caller must keep it
/// alive until the returned future resolves.
struct PlanRequest {
  const ir::TapGraph* tg = nullptr;
  core::TapOptions opts;
  /// false = fixed-mesh auto_parallel; true = auto_parallel_best_mesh
  /// (opts.num_shards / dp_replicas are ignored, as in the direct call).
  bool sweep_mesh = false;
};

/// Per-request serving telemetry, filled by submit()/plan() when the
/// caller passes one. Everything here is serving METADATA — it feeds the
/// flight recorder, access log, and latency histograms, never the plan
/// bytes (the determinism contract of service/wire.h).
struct PlanTelemetry {
  enum class Served : std::uint8_t {
    kUnknown = 0,
    kSearched,   ///< a fresh planner search ran for this key
    kMemoryHit,  ///< answered by the PlanCache memory tier
    kDiskHit,    ///< answered by the PlanCache disk tier (promoted)
    kCoalesced,  ///< joined an in-flight search for the same key
    kFallback,   ///< degraded to the expert-baseline fallback plan
    kShed,       ///< rejected by load shedding (OverloadedError)
  };
  Served served = Served::kUnknown;
  /// plan() only: wall time spent waiting that was NOT the search itself
  /// (queueing behind other requests, coalesced waits). submit() leaves
  /// these zero — the async caller owns its own clock.
  double queue_ms = 0.0;
  /// plan() only: the search's own duration (result.search_seconds).
  double search_ms = 0.0;
  /// Fallback/shed reason ("deadline", "overloaded", an error message).
  std::string reason;
};

/// Static-storage label of a Served kind ("searched", "memory", "disk",
/// "coalesced", "fallback", "shed", "-"). Safe to hold by pointer in POD
/// records.
const char* served_name(PlanTelemetry::Served served);

struct ServiceStats {
  std::uint64_t requests = 0;
  /// Full planner searches actually executed (== distinct keys submitted).
  std::uint64_t searches = 0;
  /// Requests answered from the PlanCache (memory or disk tier).
  std::uint64_t cache_hits = 0;
  /// Requests that joined an in-flight search for the same key.
  std::uint64_t coalesced = 0;
  /// Family-level reuse inside cache-missing searches.
  std::uint64_t family_hits = 0;
  std::uint64_t family_misses = 0;
  /// explain() calls that built a fresh PlanReport vs served a cached one.
  std::uint64_t report_builds = 0;
  std::uint64_t report_hits = 0;
  /// plan() calls whose deadline expired before the search completed
  /// (the result was anytime or fallback).
  std::uint64_t deadline_hits = 0;
  /// plan() calls answered with the expert-baseline fallback plan.
  std::uint64_t fallbacks = 0;
  /// submit() calls rejected with OverloadedError.
  std::uint64_t shed = 0;
  /// The subset of `shed` rejected by the deadline-class admission policy
  /// — batch-class requests shed while interactive headroom remained.
  std::uint64_t shed_by_class = 0;
  /// Incremental replanning: cache-missing searches that probed the
  /// similarity tier for a donor.
  std::uint64_t incremental_attempts = 0;
  /// Searches that pinned at least one family from a warm start.
  std::uint64_t incremental_hits = 0;
  /// Families answered by a warm-start pin instead of enumeration,
  /// summed across incremental searches (and across a sweep's meshes).
  std::uint64_t families_pinned = 0;
};

struct ServiceOptions {
  PlanCacheOptions cache;
  /// Worker threads executing requests. <= 0 selects
  /// hardware_concurrency(); 1 runs searches inline on the submitting
  /// thread (futures are then always ready when submit returns).
  int request_threads = 0;
  /// Reuse FamilySearchOutcomes across requests by family fingerprint.
  bool family_cache = true;
  /// Incremental replanning: warm-start cache-missing searches from the
  /// nearest cached plan's family outcomes when the similarity tier finds
  /// a donor sharing weighted families. Results are bit-identical to a
  /// cold search (differential-tested zoo-wide); off forces every miss to
  /// search cold. Requires family_cache; never applies to cancellable
  /// (deadlined / checkpoint-limited) requests, whose degradation
  /// contract assumes a cold family order.
  bool incremental = true;
  /// Test/bench hook: when set, replaces the planner invocation on a cache
  /// miss (the result is still cached and coalesced normally). Lets tests
  /// hold a search open on a latch to observe single-flight, and benches
  /// measure pure cache overhead.
  std::function<core::TapResult(const PlanRequest&)> search_override;
  /// Settings for the PlanReports explain() builds and caches.
  report::ReportOptions report;
  /// Load-shedding bound: submit() throws OverloadedError when this many
  /// searches are already in flight. 0 = unbounded (the default).
  /// Coalesced duplicates and cache hits are never shed — only requests
  /// that would start a NEW search count against the bound.
  std::size_t max_pending = 0;
  /// Deadline-class admission (ISSUE 10): with max_pending set, batch
  /// traffic (deadline class "none"/"relaxed") is admitted only up to
  /// batch_admission * max_pending in-flight searches, reserving the
  /// remaining headroom for interactive classes ("tight"/"standard") —
  /// under pressure, batch sheds first and interactive keeps its slot.
  /// 1.0 (the default) admits every class up to max_pending, the
  /// pre-ISSUE-10 policy. Clamped below so at least one batch slot
  /// always exists.
  double batch_admission = 1.0;
  /// Retry-After hint (milliseconds) carried by OverloadedError; the
  /// HTTP handler rounds it up to whole seconds for the 503 header.
  double shed_retry_after_ms = 1000.0;
};

/// Thread-safe Fingerprint -> FamilySearchOutcome map, mutex-striped like
/// the PlanCache's memory tier. Unbounded: family outcomes are a few ints
/// per distinct (family, options) pair.
class FamilyResultCache {
 public:
  explicit FamilyResultCache(int stripes = 8);

  FamilyResultCache(const FamilyResultCache&) = delete;
  FamilyResultCache& operator=(const FamilyResultCache&) = delete;

  /// `count_miss = false` is the warm-start probe: a miss there is
  /// immediately re-counted by the policy-level lookup that follows, so
  /// counting it twice would skew the hit ratio. Hits always count.
  std::optional<core::FamilySearchOutcome> lookup(const Fingerprint& key,
                                                  bool count_miss = true);
  void insert(const Fingerprint& key,
              const core::FamilySearchOutcome& outcome);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  struct Stripe {
    std::mutex mu;
    std::unordered_map<Fingerprint, core::FamilySearchOutcome,
                       FingerprintHash>
        map;
  };

  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// FamilySearchPolicy decorator that memoizes outcomes by
/// family-fingerprint x options-fingerprint. Safe for the parallel
/// FamilySearch pass and the mesh sweep (the stripes serialize only
/// same-stripe keys). A cached outcome whose choice does not match the
/// family's member count (a fingerprint collision — never observed, but
/// cheap to guard) falls through to the inner policy.
/// The FamilyResultCache key of one (family, options) pair: family
/// fingerprint x options fingerprint. Shared by CachingFamilyPolicy and
/// FamilyCacheWarmStart so a pin and a policy hit always agree.
Fingerprint family_result_key(const ir::TapGraph& tg,
                              const pruning::SubgraphFamily& family,
                              const core::TapOptions& opts);

/// core::FamilyWarmStart over the FamilyResultCache: pins a family when
/// its (family, options) outcome was memoized by a previous search. The
/// bit-identity contract holds by the fingerprint invariant — equal
/// family fingerprints under equal option fingerprints imply an identical
/// FamilySearchOutcome, choice AND stats — which is exactly the guarantee
/// CachingFamilyPolicy already relies on (and the service tests enforce).
class FamilyCacheWarmStart final : public core::FamilyWarmStart {
 public:
  explicit FamilyCacheWarmStart(std::shared_ptr<FamilyResultCache> cache);

  std::optional<core::FamilySearchOutcome> pinned(
      const ir::TapGraph& tg, const core::TapOptions& opts,
      const pruning::SubgraphFamily& family) const override;

 private:
  std::shared_ptr<FamilyResultCache> cache_;
};

class CachingFamilyPolicy final : public core::FamilySearchPolicy {
 public:
  CachingFamilyPolicy(std::shared_ptr<FamilyResultCache> cache,
                      std::shared_ptr<const core::FamilySearchPolicy> inner);

  std::string name() const override;
  core::FamilySearchOutcome search(
      const core::FamilySearchContext& ctx,
      const pruning::SubgraphFamily& family,
      const sharding::ShardingPlan& base) const override;

 private:
  std::shared_ptr<FamilyResultCache> cache_;
  std::shared_ptr<const core::FamilySearchPolicy> inner_;
};

class PlannerService {
 public:
  explicit PlannerService(ServiceOptions opts = {});
  ~PlannerService() = default;

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  /// Asynchronous entry point: coalesces, serves from cache, or schedules
  /// a search on the request pool. The future carries the search's
  /// exception if it throws (cache and in-flight state are cleaned up).
  /// Throws OverloadedError when max_pending is set and exceeded. The
  /// request's deadline clock (opts.deadline_ms) starts HERE, so time
  /// spent queued behind other searches counts against the budget.
  /// `telem` (optional) receives the serving kind (coalesced / memory /
  /// disk / searched), decided synchronously before this returns; its
  /// timing fields stay zero — only the blocking plan() owns a clock.
  std::shared_future<core::TapResult> submit(const PlanRequest& req,
                                             PlanTelemetry* telem = nullptr);

  /// Blocking wrapper. Without a deadline (opts.deadline_ms <= 0) this is
  /// submit().get() — exceptions propagate. WITH a deadline it is the
  /// serving-side contract of ISSUE 5: it returns a valid routed plan
  /// within (approximately) the budget and NEVER throws from the search —
  /// an overrun or failed search degrades to the expert-baseline fallback
  /// plan, marked in TapResult::provenance and counted in
  /// ServiceStats::deadline_hits / fallbacks.
  /// `telem` (optional) additionally receives queue_ms / search_ms and the
  /// fallback reason — the per-request breakdown the serving tier's flight
  /// recorder and access log report.
  core::TapResult plan(const PlanRequest& req,
                       PlanTelemetry* telem = nullptr);

  /// Plans `req` (through the normal submit path: coalesced / cached) and
  /// returns its explainability report. Reports are deterministic
  /// functions of the plan key, so they are cached alongside the plans:
  /// a repeated explain() returns the SAME shared report instance
  /// (ServiceStats::report_hits) without re-simulating.
  std::shared_ptr<const report::PlanReport> explain(const PlanRequest& req);

  /// The cache key `req` would be served under (exposed for tests and the
  /// CLI's cache-stats output).
  PlanKey key_for(const PlanRequest& req) const;

  ServiceStats stats() const;
  PlanCacheStats cache_stats() const { return cache_.stats(); }
  PlanCache& cache() { return cache_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  core::TapResult run_search(const PlanRequest& req, const PlanKey& key,
                             util::CancellationToken cancel);
  /// Degraded-mode answer when a deadlined plan() got nothing from the
  /// search: the Megatron expert plan from baselines:: (pure-DP if even
  /// that does not route), routed + costed, marked kFallback. Never
  /// cached.
  core::TapResult fallback_result(const PlanRequest& req,
                                  const std::string& reason);
  /// Rebuilds a full TapResult from a cached record: plan/cost/stats come
  /// from the record; pruning and routing are recomputed (both
  /// deterministic), so the hit is indistinguishable from a cold search.
  core::TapResult materialize(const PlanRequest& req,
                              const core::PlanRecord& record) const;
  static core::PlanRecord record_of(const core::TapResult& result);

  ServiceOptions opts_;
  PlanCache cache_;
  std::shared_ptr<FamilyResultCache> families_;

  mutable std::mutex mu_;  ///< guards stats_, inflight_ and reports_
  ServiceStats stats_;
  std::unordered_map<PlanKey, std::shared_future<core::TapResult>,
                     PlanKeyHash>
      inflight_;
  std::unordered_map<PlanKey, std::shared_ptr<const report::PlanReport>,
                     PlanKeyHash>
      reports_;

  /// Declared last: the pool's destructor drains queued searches before
  /// the caches and in-flight map above are torn down.
  util::ThreadPool pool_;
};

}  // namespace tap::service
