#include "service/graph_delta.h"

namespace tap::service {

GraphDelta diff_sketches(const GraphSketch& request,
                         const GraphSketch& donor) {
  GraphDelta d;
  std::size_t i = 0, j = 0;
  const auto& a = request.families;
  const auto& b = donor.families;
  auto less = [](const Fingerprint& x, const Fingerprint& y) {
    if (x.hi != y.hi) return x.hi < y.hi;
    return x.lo < y.lo;
  };
  while (i < a.size() && j < b.size()) {
    if (a[i].fp == b[j].fp) {
      if (a[i].weighted && b[j].weighted) ++d.shared;
      // A weighted/unweighted mismatch is impossible for equal
      // fingerprints (weightedness is structural), but counting it as
      // neither shared nor changed is the safe degradation.
      ++i;
      ++j;
    } else if (less(a[i].fp, b[j].fp)) {
      if (a[i].weighted) ++d.changed;
      ++i;
    } else {
      if (b[j].weighted) ++d.removed;
      ++j;
    }
  }
  for (; i < a.size(); ++i)
    if (a[i].weighted) ++d.changed;
  for (; j < b.size(); ++j)
    if (b[j].weighted) ++d.removed;
  return d;
}

}  // namespace tap::service
