// GraphDelta — the diff that powers incremental replanning (ISSUE 8).
//
// At fleet scale most plan requests are *near*-duplicates of something
// already planned: a fine-tune variant, a resized vocab, one extra block.
// The exact PlanKey misses, but almost every family sub-fingerprint of
// the request matches the cached donor — and equal family fingerprints
// under equal option fingerprints imply identical FamilySearchOutcomes
// (service/fingerprint.h). diff_sketches quantifies that overlap so the
// service can decide whether a warm start is worth attempting and report
// how much search work the delta actually saved.
//
// Only weighted families are counted: unweighted families carry no search
// work, so their overlap neither helps nor hurts a warm start.
#pragma once

#include <cstddef>

#include "service/fingerprint.h"

namespace tap::service {

/// Weighted-family edit summary between a request sketch and a cached
/// donor sketch. Multiplicity does not matter for reuse — one memoized
/// outcome replays onto every instance — so families match by
/// fingerprint, not by (fingerprint, multiplicity).
struct GraphDelta {
  /// Weighted families present in both sketches (reusable outcomes).
  std::size_t shared = 0;
  /// Weighted families of the request absent from the donor (the work an
  /// incremental replan must redo).
  std::size_t changed = 0;
  /// Weighted families of the donor absent from the request (dead weight;
  /// harmless, but a high count means the donor is a poor match).
  std::size_t removed = 0;

  /// Fraction of the request's weighted families the donor covers, in
  /// [0, 1]. 0 when the request has no weighted families.
  double similarity() const {
    const std::size_t denom = shared + changed;
    return denom == 0 ? 0.0
                      : static_cast<double>(shared) /
                            static_cast<double>(denom);
  }

  /// A warm start can pin at least one family.
  bool warm_startable() const { return shared > 0; }
};

/// Diffs two sketches (both sorted by fingerprint — the make_sketch
/// invariant) in one linear merge pass.
GraphDelta diff_sketches(const GraphSketch& request,
                         const GraphSketch& donor);

}  // namespace tap::service
