// Per-operator compute cost estimators used by the cost model's compute
// side and by the training-step simulator.
//
// The model is a standard roofline: an op takes
//   max(flops / device_flops, bytes_touched / mem_bw) + launch_overhead.
// Dense contractions (MatMul/Conv) are compute bound; everything else
// (elementwise, norms, embedding lookups) is memory bound.
#pragma once

#include <cstdint>

#include "cost/cluster.h"
#include "graph/graph.h"

namespace tap::cost {

/// Floating-point operations of the forward computation of `n`.
double op_flops(const Node& n);

/// Bytes read+written by the forward computation of `n` (inputs from `g`,
/// its weight, and its output).
std::int64_t op_bytes_touched(const Node& n, const Graph& g);

/// Roofline time of the forward computation of `n` on one device, with the
/// work optionally divided by `shrink` (the parallel speedup of a split
/// pattern). `fused` skips the launch overhead (XLA-style fusion).
double op_time(const Node& n, const Graph& g, const ClusterSpec& cluster,
               double shrink = 1.0, bool fused = false);

/// Backward compute is roughly 2× forward for weighted ops (grad wrt input
/// and wrt weight) and 1× for the rest.
double backward_factor(OpKind kind);

}  // namespace tap::cost
