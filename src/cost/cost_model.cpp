#include "cost/cost_model.h"

#include <algorithm>

#include "cost/flops.h"
#include "util/check.h"

namespace tap::cost {

using sharding::Collective;
using sharding::CommEvent;

double CommLedger::exposed_seconds() const {
  double s = 0.0;
  for (const CommLedgerEntry& e : entries) s += e.exposed_seconds;
  return s;
}

double CommLedger::busy_seconds() const {
  double s = 0.0;
  for (const CommLedgerEntry& e : entries) s += e.seconds;
  return s;
}

std::int64_t CommLedger::total_bytes() const {
  std::int64_t b = 0;
  for (const CommLedgerEntry& e : entries) b += e.bytes;
  return b;
}

void CommLedger::per_node(std::size_t num_nodes,
                          std::vector<double>* exposed_s,
                          std::vector<std::int64_t>* bytes) const {
  if (exposed_s != nullptr) exposed_s->assign(num_nodes, 0.0);
  if (bytes != nullptr) bytes->assign(num_nodes, 0);
  for (const CommLedgerEntry& e : entries) {
    if (e.node == ir::kInvalidGraphNode) continue;
    const auto i = static_cast<std::size_t>(e.node);
    if (i >= num_nodes) continue;
    if (exposed_s != nullptr) (*exposed_s)[i] += e.exposed_seconds;
    if (bytes != nullptr) (*bytes)[i] += e.bytes;
  }
}

PlanCost comm_cost(const sharding::RoutedPlan& routed, int num_shards,
                   const ClusterSpec& cluster, const CostOptions& opts,
                   CommLedger* ledger) {
  TAP_CHECK(routed.valid) << "cannot cost an invalid plan: " << routed.error;
  PlanCost cost;
  if (ledger != nullptr) {
    ledger->entries.clear();
    ledger->entries.reserve(routed.comms.size());
  }
  for (const CommEvent& e : routed.comms) {
    const int group = e.group > 0 ? e.group : num_shards;
    const double t =
        collective_time(e.kind, e.bytes, group, cluster, e.cross_node) *
        e.count;
    cost.comm_bytes += e.bytes * e.count;
    if (e.overlappable) {
      cost.overlappable_comm_s += t;
    } else if (e.phase == CommEvent::Phase::kForward) {
      cost.forward_comm_s += t;
    } else {
      cost.backward_comm_s += t;
    }
    if (ledger != nullptr) {
      CommLedgerEntry le;
      le.node = e.node;
      le.kind = e.kind;
      le.phase = e.phase;
      le.overlappable = e.overlappable;
      le.cross_node = e.cross_node;
      le.count = e.count;
      le.group = group;
      le.bytes = e.bytes * e.count;
      le.seconds = t;
      // Overlappable entries get their share of the discount below.
      le.exposed_seconds = e.overlappable ? 0.0 : t;
      le.reason = e.reason;
      ledger->entries.push_back(std::move(le));
    }
  }
  double exposed_overlap;
  if (opts.overlap_window_s >= 0.0) {
    exposed_overlap =
        std::max(0.0, cost.overlappable_comm_s - opts.overlap_window_s);
  } else {
    exposed_overlap =
        cost.overlappable_comm_s * opts.exposed_overlap_fraction;
  }
  cost.backward_comm_s += exposed_overlap;
  if (ledger != nullptr) {
    const double frac = cost.overlappable_comm_s > 0.0
                            ? exposed_overlap / cost.overlappable_comm_s
                            : 0.0;
    ledger->exposed_fraction = frac;
    for (CommLedgerEntry& le : ledger->entries)
      if (le.overlappable) le.exposed_seconds = le.seconds * frac;
  }
  return cost;
}

double backward_compute_window(const ir::TapGraph& tg,
                               const sharding::RoutedPlan& routed,
                               const std::vector<ir::GraphNodeId>* members,
                               int num_shards, const ClusterSpec& cluster,
                               const sharding::PatternTable* table) {
  TAP_CHECK(routed.valid);
  const Graph& g = *tg.source();
  double window = 0.0;
  std::vector<sharding::ShardingPattern> patterns_storage;
  auto add = [&](ir::GraphNodeId id) {
    const auto& n = tg.node(id);
    const auto& pats =
        table != nullptr
            ? table->at(id)
            : patterns_storage =
                  sharding::patterns_for(tg, id, num_shards,
                                         routed.dp_replicas);
    const auto& pat = pats[static_cast<std::size_t>(
        routed.pattern_index[static_cast<std::size_t>(id)])];
    const sharding::ShardSpec& ospec =
        routed.output_spec[static_cast<std::size_t>(id)];
    const double dp = static_cast<double>(std::max(1, routed.dp_replicas));
    const double shrink =
        dp * ((ospec.is_split() || pat.weight.is_split())
                  ? static_cast<double>(num_shards)
                  : 1.0);
    for (NodeId op : n.ops) {
      window += op_time(g.node(op), g, cluster, shrink) *
                backward_factor(g.node(op).kind);
    }
  };
  if (members != nullptr) {
    for (ir::GraphNodeId id : *members) add(id);
  } else {
    for (const auto& n : tg.nodes()) add(n.id);
  }
  return window;
}

MemoryEstimate estimate_memory(const ir::TapGraph& tg,
                               const sharding::RoutedPlan& routed,
                               int num_shards,
                               const TrainingOptions& training) {
  TAP_CHECK(routed.valid);
  MemoryEstimate mem;
  const Graph& g = *tg.source();
  for (const auto& n : tg.nodes()) {
    // Weights: the primary weight follows the pattern's layout, secondary
    // weights stay replicated.
    if (n.has_weight()) {
      auto pats = sharding::patterns_for(tg, n.id, num_shards,
                                         routed.dp_replicas);
      const auto& pat = pats[static_cast<std::size_t>(
          routed.pattern_index[static_cast<std::size_t>(n.id)])];
      const Node* primary = nullptr;
      for (NodeId wid : n.weight_ops) {
        const Node& w = g.node(wid);
        if (!primary || w.weight_params() > primary->weight_params())
          primary = &w;
      }
      for (NodeId wid : n.weight_ops) {
        const Node& w = g.node(wid);
        std::int64_t full = w.weight->size_bytes();
        std::int64_t local = full;
        if (&w == primary && pat.weight.is_split() &&
            pat.weight.fits(w.weight->shape, num_shards)) {
          local = full / num_shards;
        }
        // AMP keeps an fp32 master copy plus the fp16 working copy
        // (6 B/param vs 4 B); gradients live in fp16.
        mem.weight_bytes +=
            training.amp ? local + local / 2 : local;
        if (w.trainable) {
          mem.gradient_bytes += training.amp ? local / 2 : local;
          mem.optimizer_bytes += 2 * local;  // Adam m + v, fp32 either way
        }
      }
    }
    // Activations: the local shard of every compute cluster's output is
    // kept for the backward pass. The batch is pre-split across the dp
    // replicas; a split layout additionally divides across the tp group.
    bool is_input = n.inputs.empty();
    if (!is_input && n.output.shape.rank() > 0) {
      const sharding::ShardSpec& spec =
          routed.output_spec[static_cast<std::size_t>(n.id)];
      std::int64_t full =
          n.output.size_bytes() / std::max(1, routed.dp_replicas);
      mem.activation_bytes +=
          spec.is_split() && spec.fits(n.output.shape, num_shards)
              ? full / num_shards
              : full;
    }
  }
  if (training.amp) mem.activation_bytes /= 2;  // fp16 activations
  if (training.recompute) {
    mem.activation_bytes = static_cast<std::int64_t>(
        static_cast<double>(mem.activation_bytes) *
        training.recompute_keep_fraction);
  }
  if (training.zero1 && routed.dp_replicas > 1) {
    mem.optimizer_bytes /= routed.dp_replicas;
  }
  return mem;
}

}  // namespace tap::cost
