// Analytical cost of collective communication (§4.6).
//
// Ring-algorithm alpha-beta model with a per-collective efficiency factor:
// the paper observes that NCCL's AllReduce is heavily optimized while
// AllGather and especially AllToAll "take more time to communicate the
// same amount of messages". Times are seconds for `bytes` of *logical*
// tensor data moved across a group of `group` devices.
#pragma once

#include <cstdint>

#include "cost/cluster.h"
#include "sharding/shard_spec.h"

namespace tap::cost {

/// NCCL-style efficiency factor (1.0 = perfect ring utilization).
double collective_efficiency(sharding::Collective c);

/// Time for one collective of `bytes` logical bytes over `group` devices.
/// group <= 1 or kNone costs zero. `cross_node` forces the inter-node
/// bandwidth even for small groups (data-parallel replicas are laid out
/// across nodes, so a 2-way gradient AllReduce still crosses Ethernet).
double collective_time(sharding::Collective c, std::int64_t bytes, int group,
                       const ClusterSpec& cluster, bool cross_node = false);

/// Bytes actually crossing the bottleneck link, after the ring (p-1)/p (or
/// 2(p-1)/p for AllReduce) volume factor. Useful for reporting.
double collective_wire_bytes(sharding::Collective c, std::int64_t bytes,
                             int group);

}  // namespace tap::cost
