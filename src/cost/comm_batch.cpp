#include "cost/comm_batch.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "cost/collectives.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace tap::cost {

using sharding::Collective;
using sharding::CommEvent;

// ---------------------------------------------------------------------------
// Scalar reference kernel
// ---------------------------------------------------------------------------

// Replays, per lane, the exact floating-point operation sequence of
// cost::comm_cost over cost::collective_time. Every expression below is
// shape-for-shape the one in collectives.cpp/cost_model.cpp (left-assoc,
// no reordering, no FMA) — the 1.0 * (p - 1.0) of the non-AllReduce wire
// factor is an exact identity, so the multiplier tables cost nothing in
// precision. CostKernelTest.* assert bitwise equality against comm_cost
// and against the AVX2 kernel.
void comm_cost_kernel_scalar(const CommBatchView& v, CommBatchResult* out) {
  for (int l = 0; l < kCostBatchWidth; ++l) {
    double fwd = 0.0;
    double bwd = 0.0;
    double ovl = 0.0;
    std::int64_t bytes = 0;
    const std::size_t rows = v.lane_rows[l];
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = r * kCostBatchWidth + static_cast<std::size_t>(l);
      bytes += v.bytes_count[i];
      double t = 0.0;
      if (v.m_active[i] != 0) {
        const double p = v.group_d[i];
        const double b = v.bytes_d[i];
        const double wire =
            v.m_broadcast[i] != 0 ? b : v.wire_mul[i] * (p - 1.0) / p * b;
        const bool inter = v.m_cross[i] != 0 && v.spans_nodes;
        const double raw_bw =
            inter ? v.inter_bw
                  : (p <= v.gpus_per_node_d ? v.intra_bw : v.inter_bw);
        const double bw = raw_bw * v.eff[i];
        const double lat =
            inter ? v.inter_latency
                  : (p <= v.gpus_per_node_d ? v.intra_latency
                                            : v.inter_latency);
        const double steps = v.steps_mul[i] * (p - 1.0);
        t = (steps * lat + wire / bw) * v.count_d[i];
      }
      if (v.m_overlap[i] != 0) {
        ovl += t;
      } else if (v.m_backward[i] != 0) {
        bwd += t;
      } else {
        fwd += t;
      }
    }
    double exposed;
    if (v.window[l] >= 0.0) {
      exposed = std::max(0.0, ovl - v.window[l]);
    } else {
      exposed = ovl * v.frac[l];
    }
    bwd += exposed;
    out->forward_s[l] = fwd;
    out->backward_s[l] = bwd;
    out->overlappable_s[l] = ovl;
    out->bytes[l] = bytes;
  }
}

// ---------------------------------------------------------------------------
// CommEventBatch
// ---------------------------------------------------------------------------

void CommEventBatch::reset() {
  lanes_ = 0;
  rows_ = 0;
  lane_events_.assign(kCostBatchWidth, 0);
  for (int l = 0; l < kCostBatchWidth; ++l) {
    window_[l] = -1.0;  // unused lanes cost exactly zero in every kernel
    frac_[l] = 0.0;
  }
}

void CommEventBatch::ensure_rows(std::size_t rows) {
  if (rows <= row_cap_) return;
  std::size_t cap = std::max<std::size_t>(row_cap_ * 2, 64);
  cap = std::max(cap, rows);
  const std::size_t n = cap * kCostBatchWidth;
  bytes_d_.resize(n, 0.0);
  count_d_.resize(n, 0.0);
  group_d_.resize(n, 0.0);
  eff_.resize(n, 0.0);
  wire_mul_.resize(n, 0.0);
  steps_mul_.resize(n, 0.0);
  m_active_.resize(n, 0);
  m_overlap_.resize(n, 0);
  m_backward_.resize(n, 0);
  m_cross_.resize(n, 0);
  m_broadcast_.resize(n, 0);
  bytes_count_.resize(n, 0);
  row_cap_ = cap;
}

int CommEventBatch::add_candidate(const sharding::RoutedPlan& routed,
                                  int num_shards, const CostOptions& opts) {
  TAP_CHECK(!full()) << "CommEventBatch already holds " << kCostBatchWidth
                     << " candidates";
  TAP_CHECK(routed.valid) << "cannot batch an invalid plan: " << routed.error;
  if (lane_events_.size() != kCostBatchWidth) reset();
  const int lane = lanes_++;
  window_[lane] = opts.overlap_window_s;
  frac_[lane] = opts.exposed_overlap_fraction;

  const std::size_t n = routed.comms.size();
  ensure_rows(std::max(rows_, n));
  lane_events_[static_cast<std::size_t>(lane)] = n;

  auto zero_slot = [&](std::size_t i) {
    bytes_d_[i] = count_d_[i] = group_d_[i] = eff_[i] = 0.0;
    wire_mul_[i] = steps_mul_[i] = 0.0;
    m_active_[i] = m_overlap_[i] = m_backward_[i] = 0;
    m_cross_[i] = m_broadcast_[i] = 0;
    bytes_count_[i] = 0;
  };
  // The arrays are reused across batches, so any slot this batch exposes
  // to the kernels must be rewritten: rows this lane does not reach are
  // zeroed (+0.0 contributions), and rows beyond every previous lane's
  // depth are zeroed across all lanes before this lane's events land.
  if (n > rows_) {
    for (std::size_t r = rows_; r < n; ++r)
      for (int l = 0; l < kCostBatchWidth; ++l)
        zero_slot(r * kCostBatchWidth + static_cast<std::size_t>(l));
    rows_ = n;
  } else {
    for (std::size_t r = n; r < rows_; ++r)
      zero_slot(r * kCostBatchWidth + static_cast<std::size_t>(lane));
  }

  for (std::size_t j = 0; j < n; ++j) {
    const CommEvent& e = routed.comms[j];
    const std::size_t i = j * kCostBatchWidth + static_cast<std::size_t>(lane);
    const int group = e.group > 0 ? e.group : num_shards;
    bytes_d_[i] = static_cast<double>(e.bytes);
    count_d_[i] = static_cast<double>(e.count);
    group_d_[i] = static_cast<double>(group);
    eff_[i] = collective_efficiency(e.kind);
    const double ar_mul = e.kind == Collective::kAllReduce ? 2.0 : 1.0;
    wire_mul_[i] = ar_mul;
    steps_mul_[i] = ar_mul;
    m_active_[i] =
        (e.kind != Collective::kNone && group > 1 && e.bytes > 0) ? ~0ull : 0;
    m_overlap_[i] = e.overlappable ? ~0ull : 0;
    m_backward_[i] = e.phase == CommEvent::Phase::kBackward ? ~0ull : 0;
    m_cross_[i] = e.cross_node ? ~0ull : 0;
    m_broadcast_[i] = e.kind == Collective::kBroadcast ? ~0ull : 0;
    bytes_count_[i] = e.bytes * e.count;
  }
  return lane;
}

CommBatchView CommEventBatch::view(const ClusterSpec& cluster) const {
  TAP_CHECK(lane_events_.size() == kCostBatchWidth)
      << "CommEventBatch::view before reset()";
  CommBatchView v;
  v.bytes_d = bytes_d_.data();
  v.count_d = count_d_.data();
  v.group_d = group_d_.data();
  v.eff = eff_.data();
  v.wire_mul = wire_mul_.data();
  v.steps_mul = steps_mul_.data();
  v.m_active = m_active_.data();
  v.m_overlap = m_overlap_.data();
  v.m_backward = m_backward_.data();
  v.m_cross = m_cross_.data();
  v.m_broadcast = m_broadcast_.data();
  v.bytes_count = bytes_count_.data();
  v.window = window_;
  v.frac = frac_;
  v.lane_rows = lane_events_.data();
  v.rows = rows_;
  v.intra_bw = cluster.intra_bw;
  v.inter_bw = cluster.inter_bw;
  v.intra_latency = cluster.intra_latency;
  v.inter_latency = cluster.inter_latency;
  v.gpus_per_node_d = static_cast<double>(cluster.gpus_per_node);
  v.spans_nodes = cluster.spans_nodes();
  return v;
}

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

const char* cost_kernel_name(CostKernel k) {
  switch (k) {
    case CostKernel::kScalar:
      return "scalar";
    case CostKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

int cost_kernel_width(CostKernel k) {
  return k == CostKernel::kAvx2 ? kCostBatchWidth : 1;
}

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool avx2_usable() { return avx2_kernel_compiled() && cpu_has_avx2(); }

CostKernel detect_kernel() {
  const char* env = std::getenv("TAP_FORCE_SCALAR");
  if (env != nullptr && *env != '\0' && std::string_view(env) != "0")
    return CostKernel::kScalar;
  return avx2_usable() ? CostKernel::kAvx2 : CostKernel::kScalar;
}

std::optional<CostKernel>& forced_kernel() {
  static std::optional<CostKernel> forced;
  return forced;
}

void publish_kernel_width(CostKernel k) {
  obs::registry().gauge("cost.kernel_width")->set(cost_kernel_width(k));
}

}  // namespace

CostKernel active_cost_kernel() {
  if (forced_kernel().has_value()) return *forced_kernel();
  static const CostKernel detected = [] {
    const CostKernel k = detect_kernel();
    publish_kernel_width(k);
    return k;
  }();
  return detected;
}

void set_cost_kernel_for_testing(std::optional<CostKernel> k) {
  if (k.has_value() && *k == CostKernel::kAvx2) {
    TAP_CHECK(avx2_usable()) << "AVX2 cost kernel unavailable on this host";
  }
  forced_kernel() = k;
  publish_kernel_width(active_cost_kernel());
}

void comm_cost_batch_with(CostKernel kernel, const CommEventBatch& batch,
                          const ClusterSpec& cluster,
                          PlanCost out[kCostBatchWidth]) {
  const CommBatchView v = batch.view(cluster);
  CommBatchResult res;
  if (kernel == CostKernel::kAvx2) {
    comm_cost_kernel_avx2(v, &res);
  } else {
    comm_cost_kernel_scalar(v, &res);
  }
  for (int l = 0; l < batch.lanes(); ++l) {
    out[l].forward_comm_s = res.forward_s[l];
    out[l].backward_comm_s = res.backward_s[l];
    out[l].overlappable_comm_s = res.overlappable_s[l];
    out[l].comm_bytes = res.bytes[l];
  }
}

void comm_cost_batch(const CommEventBatch& batch, const ClusterSpec& cluster,
                     PlanCost out[kCostBatchWidth]) {
  static obs::Counter* batches = obs::registry().counter("cost.batches");
  static obs::Counter* candidates =
      obs::registry().counter("cost.candidates_batched");
  batches->add(1);
  candidates->add(static_cast<std::uint64_t>(batch.lanes()));
  comm_cost_batch_with(active_cost_kernel(), batch, cluster, out);
}

CostArena& tls_cost_arena() {
  static thread_local CostArena arena;
  return arena;
}

}  // namespace tap::cost
