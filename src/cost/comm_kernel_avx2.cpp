// AVX2 batch cost kernel (ISSUE 6). Compiled as its own translation unit
// with -mavx2 -mno-fma -ffp-contract=off (see src/CMakeLists.txt):
// vectorization is ACROSS candidate lanes only, every lane accumulates
// its own events in row order, and with FMA contraction off each vmulpd /
// vdivpd / vaddpd is the same correctly-rounded IEEE operation the scalar
// kernel performs — so the results are bit-identical to
// comm_cost_kernel_scalar, which the CostKernel/BitIdentity tests enforce
// across the zoo and under differential fuzzing.
//
// Branches become exec masks (the CppSPMD idiom): every lane computes the
// full collective-time expression and the masks select, per lane, the
// broadcast wire volume, the intra/inter link, and the
// forward/backward/overlappable accumulator. Inactive lanes (padding
// rows, degenerate groups) are squashed to +0.0 by a bitwise AND with the
// active mask before accumulation.
//
// This file must not include any repo header except cost/comm_kernel.h:
// an inline function from a shared header compiled here under -mavx2
// could win COMDAT selection and crash pre-AVX2 hosts.
#include "cost/comm_kernel.h"

#if defined(TAP_COST_KERNEL_AVX2)

#include <immintrin.h>

namespace tap::cost {

namespace {

inline __m256d load_mask(const std::uint64_t* p) {
  return _mm256_castsi256_pd(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

}  // namespace

bool avx2_kernel_compiled() { return true; }

void comm_cost_kernel_avx2(const CommBatchView& view, CommBatchResult* out) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d intra_bw = _mm256_set1_pd(view.intra_bw);
  const __m256d inter_bw = _mm256_set1_pd(view.inter_bw);
  const __m256d intra_lat = _mm256_set1_pd(view.intra_latency);
  const __m256d inter_lat = _mm256_set1_pd(view.inter_latency);
  const __m256d gpn = _mm256_set1_pd(view.gpus_per_node_d);
  const __m256d one = _mm256_set1_pd(1.0);

  for (int half = 0; half < kCostBatchWidth / 4; ++half) {
    const std::size_t lane0 = static_cast<std::size_t>(half) * 4;
    __m256d acc_fwd = zero;
    __m256d acc_bwd = zero;
    __m256d acc_ovl = zero;
    __m256i acc_bytes = _mm256_setzero_si256();

    for (std::size_t r = 0; r < view.rows; ++r) {
      const std::size_t i = r * kCostBatchWidth + lane0;
      const __m256d b = _mm256_loadu_pd(view.bytes_d + i);
      const __m256d cnt = _mm256_loadu_pd(view.count_d + i);
      const __m256d p = _mm256_loadu_pd(view.group_d + i);
      const __m256d eff = _mm256_loadu_pd(view.eff + i);
      const __m256d wmul = _mm256_loadu_pd(view.wire_mul + i);
      const __m256d smul = _mm256_loadu_pd(view.steps_mul + i);
      const __m256d m_active = load_mask(view.m_active + i);
      const __m256d m_ovl = load_mask(view.m_overlap + i);
      const __m256d m_bwd = load_mask(view.m_backward + i);
      const __m256d m_bcast = load_mask(view.m_broadcast + i);
      const __m256d m_inter =
          view.spans_nodes ? load_mask(view.m_cross + i) : zero;

      // wire = broadcast ? b : wire_mul * (p - 1) / p * b
      // (left-assoc, exactly collective_wire_bytes' operation order; the
      // 1.0 * (p - 1) of the non-AllReduce kinds is an exact identity).
      const __m256d pm1 = _mm256_sub_pd(p, one);
      __m256d wire = _mm256_mul_pd(
          _mm256_div_pd(_mm256_mul_pd(wmul, pm1), p), b);
      wire = _mm256_blendv_pd(wire, b, m_bcast);

      // Link selection: small groups ride the intra-node fabric unless the
      // collective crosses nodes (dp traffic) on a multi-node cluster.
      const __m256d m_small = _mm256_cmp_pd(p, gpn, _CMP_LE_OQ);
      __m256d raw_bw = _mm256_blendv_pd(inter_bw, intra_bw, m_small);
      raw_bw = _mm256_blendv_pd(raw_bw, inter_bw, m_inter);
      __m256d lat = _mm256_blendv_pd(inter_lat, intra_lat, m_small);
      lat = _mm256_blendv_pd(lat, inter_lat, m_inter);

      const __m256d bw = _mm256_mul_pd(raw_bw, eff);
      const __m256d steps = _mm256_mul_pd(smul, pm1);

      // t = (steps * lat + wire / bw) * count, masked to +0.0 when the
      // event is degenerate (kind none, group <= 1, bytes <= 0, padding).
      __m256d t = _mm256_mul_pd(
          _mm256_add_pd(_mm256_mul_pd(steps, lat), _mm256_div_pd(wire, bw)),
          cnt);
      t = _mm256_and_pd(t, m_active);

      // One accumulator per event, in the scalar kernel's priority order:
      // overlappable, else backward phase, else forward.
      acc_ovl = _mm256_add_pd(acc_ovl, _mm256_and_pd(t, m_ovl));
      const __m256d t_rest = _mm256_andnot_pd(m_ovl, t);
      acc_bwd = _mm256_add_pd(acc_bwd, _mm256_and_pd(t_rest, m_bwd));
      acc_fwd = _mm256_add_pd(acc_fwd, _mm256_andnot_pd(m_bwd, t_rest));

      // Logical bytes accumulate unconditionally, like comm_cost
      // (padding slots carry zero).
      acc_bytes = _mm256_add_epi64(
          acc_bytes, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                         view.bytes_count + i)));
    }

    // Per-lane overlap discount (comm_cost's tail): with a window,
    // exposed = (0 < ovl - window) ? ovl - window : 0 — std::max's exact
    // comparison semantics, including NaN falling to 0; without one,
    // exposed = ovl * fraction.
    const __m256d wv = _mm256_loadu_pd(view.window + lane0);
    const __m256d fv = _mm256_loadu_pd(view.frac + lane0);
    const __m256d diff = _mm256_sub_pd(acc_ovl, wv);
    const __m256d exp_w =
        _mm256_and_pd(diff, _mm256_cmp_pd(zero, diff, _CMP_LT_OQ));
    const __m256d exp_f = _mm256_mul_pd(acc_ovl, fv);
    const __m256d exposed = _mm256_blendv_pd(
        exp_f, exp_w, _mm256_cmp_pd(wv, zero, _CMP_GE_OQ));
    acc_bwd = _mm256_add_pd(acc_bwd, exposed);

    _mm256_storeu_pd(out->forward_s + lane0, acc_fwd);
    _mm256_storeu_pd(out->backward_s + lane0, acc_bwd);
    _mm256_storeu_pd(out->overlappable_s + lane0, acc_ovl);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->bytes + lane0),
                        acc_bytes);
  }
}

}  // namespace tap::cost

#else  // !TAP_COST_KERNEL_AVX2

namespace tap::cost {

bool avx2_kernel_compiled() { return false; }

void comm_cost_kernel_avx2(const CommBatchView& view, CommBatchResult* out) {
  // Unreachable by construction: the dispatcher never selects the AVX2
  // kernel when it is not compiled in. Fall back to the reference so a
  // direct caller still gets correct results.
  comm_cost_kernel_scalar(view, out);
}

}  // namespace tap::cost

#endif  // TAP_COST_KERNEL_AVX2
