// Raw kernel interface for batched candidate costing (ISSUE 6).
//
// CommEventBatch (cost/comm_batch.h) lays the comm events of up to
// kCostBatchWidth routed candidates out as structure-of-arrays rows; the
// kernels below reduce every lane to its PlanCost accumulators in one
// pass. Two implementations share this interface:
//
//   * comm_cost_kernel_scalar — the reference. Per lane it replays the
//     exact floating-point operation sequence of cost::comm_cost /
//     cost::collective_time, one event row at a time.
//   * comm_cost_kernel_avx2   — the same math over 8 candidate lanes of
//     AVX2 doubles (two 4-wide halves) with exec-mask blends instead of
//     branches. Multiplies, divides and adds are IEEE-correctly rounded
//     in both scalar and vector form and FMA contraction is disabled for
//     the AVX2 translation unit, so the two kernels produce bit-identical
//     doubles — the repo's determinism guarantees (cache keys,
//     byte-identical plans at any thread count) depend on this.
//
// This header is deliberately bare: PODs and free functions only, no
// includes beyond <cstddef>/<cstdint>. The AVX2 translation unit is
// compiled with -mavx2, and any inline function it pulled in from a
// shared header could be vectorized there and then win COMDAT selection
// for the whole binary — an illegal-instruction trap on pre-AVX2 hosts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tap::cost {

/// Candidates evaluated per kernel pass (lanes per batch).
inline constexpr int kCostBatchWidth = 8;

/// Read-only SoA view of one CommEventBatch plus the uniform cluster
/// scalars. Event arrays hold `rows * kCostBatchWidth` entries, row-major
/// (row r, lane l at index r * kCostBatchWidth + l); per-lane arrays hold
/// kCostBatchWidth entries. Mask arrays use all-ones / all-zeros 64-bit
/// patterns so the vector kernel can load them directly as blend masks.
struct CommBatchView {
  // ---- per event slot -----------------------------------------------------
  const double* bytes_d = nullptr;     ///< double(event.bytes)
  const double* count_d = nullptr;     ///< double(event.count)
  const double* group_d = nullptr;     ///< double(resolved group size)
  const double* eff = nullptr;         ///< collective_efficiency(kind)
  const double* wire_mul = nullptr;    ///< 2.0 for AllReduce, else 1.0
  const double* steps_mul = nullptr;   ///< 2.0 for AllReduce, else 1.0
  const std::uint64_t* m_active = nullptr;     ///< kind!=None, group>1, bytes>0
  const std::uint64_t* m_overlap = nullptr;    ///< event.overlappable
  const std::uint64_t* m_backward = nullptr;   ///< phase == kBackward
  const std::uint64_t* m_cross = nullptr;      ///< event.cross_node
  const std::uint64_t* m_broadcast = nullptr;  ///< kind == kBroadcast
  const std::int64_t* bytes_count = nullptr;   ///< event.bytes * event.count

  // ---- per lane -----------------------------------------------------------
  const double* window = nullptr;  ///< CostOptions::overlap_window_s
  const double* frac = nullptr;    ///< CostOptions::exposed_overlap_fraction
  /// Real (un-padded) event rows per lane. The scalar kernel stops each
  /// lane here, exactly like comm_cost; the vector kernel instead relies
  /// on padding rows being all-zero (masked to a +0.0 contribution).
  const std::size_t* lane_rows = nullptr;

  std::size_t rows = 0;

  // ---- uniform cluster scalars (ClusterSpec) ------------------------------
  double intra_bw = 0.0;
  double inter_bw = 0.0;
  double intra_latency = 0.0;
  double inter_latency = 0.0;
  double gpus_per_node_d = 0.0;
  bool spans_nodes = false;
};

/// Per-lane PlanCost accumulators. backward_s already includes the
/// exposed share of the overlappable time (the overlap discount runs
/// inside the kernel, per lane).
struct CommBatchResult {
  double forward_s[kCostBatchWidth];
  double backward_s[kCostBatchWidth];
  double overlappable_s[kCostBatchWidth];
  std::int64_t bytes[kCostBatchWidth];
};

/// Reference kernel: scalar per-lane replay of cost::comm_cost's math.
void comm_cost_kernel_scalar(const CommBatchView& view, CommBatchResult* out);

/// AVX2 kernel. Only callable when avx2_kernel_compiled() — the scalar
/// dispatcher (cost/comm_batch.cpp) additionally checks the CPU at
/// runtime before routing batches here.
void comm_cost_kernel_avx2(const CommBatchView& view, CommBatchResult* out);

/// True when this binary contains the AVX2 kernel (x86-64 build with a
/// compiler that accepts -mavx2).
bool avx2_kernel_compiled();

}  // namespace tap::cost
