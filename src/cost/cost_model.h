// The TAP cost model (§4.6): the cost of a candidate plan is its
// communication along the critical path, because once tensor-parallel
// groups span Ethernet links, communication — not FLOPs — decides which
// plan wins.
//
// The model handles the three practical challenges the paper lists:
//   * counting communicated parameters — only *trainable* weight gradients
//     are exchanged in the backward phase (routing already filters);
//   * gradient overlap/aggregation — weight-gradient AllReduces overlap
//     with backward compute and are packed (§4.7.1), so only a configurable
//     exposed fraction counts toward the plan cost;
//   * collective efficiency — AllGather/AllToAll pay their NCCL efficiency
//     penalty relative to AllReduce (cost/collectives).
#pragma once

#include "cost/cluster.h"
#include "cost/collectives.h"
#include "sharding/routing.h"

namespace tap::cost {

struct CostOptions {
  /// Fraction of overlappable (weight-gradient) communication time that
  /// remains exposed after overlap with backward compute and gradient
  /// packing. 0 = perfectly hidden, 1 = fully serial. Used only when
  /// `overlap_window_s` is negative.
  double exposed_overlap_fraction = 0.25;
  /// Backward-compute time available to hide gradient collectives behind.
  /// When >= 0, exposed overlappable comm = max(0, total − window): on a
  /// fast intra-node fabric gradients hide almost entirely, while on
  /// Ethernet most of the traffic is exposed — the mechanism behind
  /// Fig. 6's DP bars growing from 8w to 16w.
  double overlap_window_s = -1.0;
};

struct PlanCost {
  double forward_comm_s = 0.0;   ///< exposed forward-path communication
  double backward_comm_s = 0.0;  ///< exposed backward-path communication
  /// Full (pre-discount) time of the overlappable gradient collectives.
  double overlappable_comm_s = 0.0;
  std::int64_t comm_bytes = 0;  ///< logical bytes over all collectives

  double total() const { return forward_comm_s + backward_comm_s; }
};

/// Communication cost of a routed plan on `cluster`. The collective group
/// is the whole device world (the plan's num_shards).
PlanCost comm_cost(const sharding::RoutedPlan& routed, int num_shards,
                   const ClusterSpec& cluster, const CostOptions& opts = {});

/// Backward-pass compute time of the clusters in `members` (nullptr = the
/// whole graph) under the routed plan's sharding — the overlap window fed
/// into CostOptions::overlap_window_s.
double backward_compute_window(const ir::TapGraph& tg,
                               const sharding::RoutedPlan& routed,
                               const std::vector<ir::GraphNodeId>* members,
                               int num_shards, const ClusterSpec& cluster,
                               const sharding::PatternTable* table = nullptr);

// ---------------------------------------------------------------------------
// Training-technique options (§4.8: AMP / recomputation / ZeRO are
// orthogonal passes TAP composes with)
// ---------------------------------------------------------------------------

struct TrainingOptions {
  /// Automatic mixed precision: fp16 activations/gradients/compute with
  /// fp32 master weights (NVIDIA AMP, §4.8 [1]).
  bool amp = false;
  /// Tensor-core speedup applied to compute when amp is on (V100-era
  /// conservative figure; peak is ~8x, sustained far less).
  double amp_compute_speedup = 3.0;
  /// Gradient checkpointing (§4.8 [6]): keep only a fraction of forward
  /// activations and recompute the rest during backward.
  bool recompute = false;
  double recompute_keep_fraction = 0.25;
  double recompute_extra_backward = 0.33;  ///< one extra forward, amortized
  /// ZeRO stage 1 (§4.8 [23,24]): shard optimizer states across the dp
  /// replicas; each step re-gathers the updated weight shards.
  bool zero1 = false;
};

// ---------------------------------------------------------------------------
// Per-device memory estimate (Fig. 13's memory axis)
// ---------------------------------------------------------------------------

struct MemoryEstimate {
  std::int64_t weight_bytes = 0;      ///< local shards of all weights
  std::int64_t gradient_bytes = 0;    ///< same layout as weights
  std::int64_t optimizer_bytes = 0;   ///< Adam: 2 fp32 moments per weight
  std::int64_t activation_bytes = 0;  ///< stored forward activations (local)
  std::int64_t total() const {
    return weight_bytes + gradient_bytes + optimizer_bytes + activation_bytes;
  }
};

/// Estimates per-device training memory for a routed plan under the given
/// training techniques.
MemoryEstimate estimate_memory(const ir::TapGraph& tg,
                               const sharding::RoutedPlan& routed,
                               int num_shards,
                               const TrainingOptions& training = {});

}  // namespace tap::cost
