// The TAP cost model (§4.6): the cost of a candidate plan is its
// communication along the critical path, because once tensor-parallel
// groups span Ethernet links, communication — not FLOPs — decides which
// plan wins.
//
// The model handles the three practical challenges the paper lists:
//   * counting communicated parameters — only *trainable* weight gradients
//     are exchanged in the backward phase (routing already filters);
//   * gradient overlap/aggregation — weight-gradient AllReduces overlap
//     with backward compute and are packed (§4.7.1), so only a configurable
//     exposed fraction counts toward the plan cost;
//   * collective efficiency — AllGather/AllToAll pay their NCCL efficiency
//     penalty relative to AllReduce (cost/collectives).
#pragma once

#include "cost/cluster.h"
#include "cost/collectives.h"
#include "sharding/routing.h"

namespace tap::cost {

struct CostOptions {
  /// Fraction of overlappable (weight-gradient) communication time that
  /// remains exposed after overlap with backward compute and gradient
  /// packing. 0 = perfectly hidden, 1 = fully serial. Used only when
  /// `overlap_window_s` is negative.
  double exposed_overlap_fraction = 0.25;
  /// Backward-compute time available to hide gradient collectives behind.
  /// When >= 0, exposed overlappable comm = max(0, total − window): on a
  /// fast intra-node fabric gradients hide almost entirely, while on
  /// Ethernet most of the traffic is exposed — the mechanism behind
  /// Fig. 6's DP bars growing from 8w to 16w.
  double overlap_window_s = -1.0;
};

struct PlanCost {
  double forward_comm_s = 0.0;   ///< exposed forward-path communication
  double backward_comm_s = 0.0;  ///< exposed backward-path communication
  /// Full (pre-discount) time of the overlappable gradient collectives.
  double overlappable_comm_s = 0.0;
  std::int64_t comm_bytes = 0;  ///< logical bytes over all collectives

  double total() const { return forward_comm_s + backward_comm_s; }
};

// ---------------------------------------------------------------------------
// Per-collective cost attribution (the --explain ledger)
// ---------------------------------------------------------------------------

/// One routed collective, costed. `seconds` is the full busy time of the
/// collective (count included); `exposed_seconds` is its contribution to
/// PlanCost::total() after the overlap discount — the ledger's
/// exposed_seconds sum reproduces the scalar plan cost exactly.
struct CommLedgerEntry {
  ir::GraphNodeId node = ir::kInvalidGraphNode;  ///< owning GraphNode
  sharding::Collective kind = sharding::Collective::kNone;
  sharding::CommEvent::Phase phase = sharding::CommEvent::Phase::kForward;
  bool overlappable = false;
  bool cross_node = false;
  int count = 1;
  int group = 0;           ///< resolved collective group size
  std::int64_t bytes = 0;  ///< logical bytes over all `count` launches
  double seconds = 0.0;
  double exposed_seconds = 0.0;
  std::string reason;  ///< routing reason ("reshard ...", "pattern ...")
};

/// The per-collective breakdown comm_cost() optionally fills: one entry
/// per routed CommEvent plus the overlap discount actually applied. This
/// is the single source of truth for cost attribution — PlanReport,
/// core::visualize_plan and bench_fig14 all read it instead of recosting
/// events ad hoc.
struct CommLedger {
  std::vector<CommLedgerEntry> entries;
  /// Fraction of overlappable comm time left exposed under the
  /// CostOptions used (window mode or the configured fraction).
  double exposed_fraction = 0.0;

  /// Σ exposed_seconds == PlanCost::total() (modulo addition order).
  double exposed_seconds() const;
  /// Σ seconds: total collective busy time before any overlap discount.
  double busy_seconds() const;
  std::int64_t total_bytes() const;
  /// Scatters the entries onto per-GraphNode accumulators (vectors are
  /// assigned to `num_nodes` zeros; either output may be nullptr).
  void per_node(std::size_t num_nodes, std::vector<double>* exposed_s,
                std::vector<std::int64_t>* bytes) const;
};

/// Communication cost of a routed plan on `cluster`. The collective group
/// is the whole device world (the plan's num_shards). When `ledger` is
/// non-null it receives the per-collective attribution; the scalar result
/// is unchanged (the hot search path passes nullptr and allocates
/// nothing).
PlanCost comm_cost(const sharding::RoutedPlan& routed, int num_shards,
                   const ClusterSpec& cluster, const CostOptions& opts = {},
                   CommLedger* ledger = nullptr);

/// Backward-pass compute time of the clusters in `members` (nullptr = the
/// whole graph) under the routed plan's sharding — the overlap window fed
/// into CostOptions::overlap_window_s.
double backward_compute_window(const ir::TapGraph& tg,
                               const sharding::RoutedPlan& routed,
                               const std::vector<ir::GraphNodeId>* members,
                               int num_shards, const ClusterSpec& cluster,
                               const sharding::PatternTable* table = nullptr);

// ---------------------------------------------------------------------------
// Training-technique options (§4.8: AMP / recomputation / ZeRO are
// orthogonal passes TAP composes with)
// ---------------------------------------------------------------------------

struct TrainingOptions {
  /// Automatic mixed precision: fp16 activations/gradients/compute with
  /// fp32 master weights (NVIDIA AMP, §4.8 [1]).
  bool amp = false;
  /// Tensor-core speedup applied to compute when amp is on (V100-era
  /// conservative figure; peak is ~8x, sustained far less).
  double amp_compute_speedup = 3.0;
  /// Gradient checkpointing (§4.8 [6]): keep only a fraction of forward
  /// activations and recompute the rest during backward.
  bool recompute = false;
  double recompute_keep_fraction = 0.25;
  double recompute_extra_backward = 0.33;  ///< one extra forward, amortized
  /// ZeRO stage 1 (§4.8 [23,24]): shard optimizer states across the dp
  /// replicas; each step re-gathers the updated weight shards.
  bool zero1 = false;
};

// ---------------------------------------------------------------------------
// Per-device memory estimate (Fig. 13's memory axis)
// ---------------------------------------------------------------------------

struct MemoryEstimate {
  std::int64_t weight_bytes = 0;      ///< local shards of all weights
  std::int64_t gradient_bytes = 0;    ///< same layout as weights
  std::int64_t optimizer_bytes = 0;   ///< Adam: 2 fp32 moments per weight
  std::int64_t activation_bytes = 0;  ///< stored forward activations (local)
  std::int64_t total() const {
    return weight_bytes + gradient_bytes + optimizer_bytes + activation_bytes;
  }
};

/// Estimates per-device training memory for a routed plan under the given
/// training techniques.
MemoryEstimate estimate_memory(const ir::TapGraph& tg,
                               const sharding::RoutedPlan& routed,
                               int num_shards,
                               const TrainingOptions& training = {});

}  // namespace tap::cost
