#include "cost/flops.h"

#include <algorithm>

namespace tap::cost {

double op_flops(const Node& n) {
  const auto out = static_cast<double>(n.output.num_elements());
  switch (n.kind) {
    case OpKind::kMatMul: {
      if (n.weight) {
        const TensorShape& w = n.weight->shape;
        // 2D dense [K,N] or 3D expert bank [E,K,N]: out already includes
        // the E and N axes, so multiply by the contraction K.
        std::int64_t k = w.rank() == 3 ? w.dim(1) : w.dim(0);
        return 2.0 * out * static_cast<double>(k);
      }
      // Weightless matmul (e.g. CLIP similarity): contraction inferred
      // conservatively from the output row size.
      return 2.0 * out * static_cast<double>(
                             std::max<std::int64_t>(n.output.shape.dim(-1), 1));
    }
    case OpKind::kBatchMatMul:
      // Contraction dim is not stored; attention uses d_head or seq — use
      // the last output dim as a proxy (exact enough for ranking).
      return 2.0 * out * static_cast<double>(n.output.shape.dim(-1));
    case OpKind::kConv2D: {
      const TensorShape& w = n.weight->shape;  // [kh, kw, cin, cout]
      return 2.0 * out *
             static_cast<double>(w.dim(0) * w.dim(1) * w.dim(2));
    }
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kBatchNorm:
      return 6.0 * out;
    case OpKind::kGelu:
    case OpKind::kTanh:
    case OpKind::kSigmoid:
    case OpKind::kErf:
      return 8.0 * out;
    case OpKind::kCrossEntropy:
      return 5.0 * out;
    default:
      return is_elementwise(n.kind) ? out : 2.0 * out;
  }
}

std::int64_t op_bytes_touched(const Node& n, const Graph& g) {
  std::int64_t bytes = n.output.size_bytes();
  for (NodeId in : n.inputs) bytes += g.node(in).output.size_bytes();
  if (n.weight) bytes += n.weight->size_bytes();
  return bytes;
}

double op_time(const Node& n, const Graph& g, const ClusterSpec& cluster,
               double shrink, bool fused) {
  if (is_aux(n.kind) || is_comm(n.kind)) return 0.0;
  if (n.kind == OpKind::kPlaceholder || n.kind == OpKind::kConst) return 0.0;
  const double s = std::max(shrink, 1.0);
  const double compute = op_flops(n) / s / cluster.effective_flops();
  const double memory =
      static_cast<double>(op_bytes_touched(n, g)) / s / cluster.mem_bw;
  return std::max(compute, memory) +
         (fused ? 0.0 : cluster.kernel_launch_overhead);
}

double backward_factor(OpKind kind) {
  return may_have_weight(kind) ? 2.0 : 1.0;
}

}  // namespace tap::cost
