// ClusterSpec: the physical training system S(m, n) of §3.1 — m worker
// nodes with n accelerators each, plus the bandwidth/latency/compute
// numbers the analytical models need.
//
// Defaults reproduce the paper's testbed (§6.1): nodes with 8× V100 SXM2
// 32 GB connected by 32 Gbps Ethernet (≈4 GB/s), PCIe-class intra-node
// bandwidth. The key property driving every result in §6 is the ~10×
// intra/inter bandwidth gap: it is why communication dominates once a
// tensor-parallel group spans nodes (Fig. 6).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tap::cost {

struct ClusterSpec {
  int num_nodes = 1;      ///< m
  int gpus_per_node = 8;  ///< n

  /// Effective intra-node bandwidth per GPU pair (PCIe/NVLink mix), B/s.
  double intra_bw = 12e9;
  /// Effective inter-node bandwidth per node (32 Gbps Ethernet), B/s.
  double inter_bw = 4e9;
  double intra_latency = 8e-6;   ///< per ring hop, seconds
  double inter_latency = 40e-6;  ///< per ring hop, seconds

  /// Sustained compute per GPU (V100 fp32 with realistic efficiency), FLOP/s.
  double flops_per_gpu = 7.0e12;
  /// HBM2 bandwidth for memory-bound ops, B/s.
  double mem_bw = 800e9;
  /// Device memory capacity, bytes (V100 32 GB).
  double gpu_memory = 32.0 * (1ull << 30);
  /// Per-kernel launch overhead, seconds (what XLA fusion amortizes, §6.2.2).
  double kernel_launch_overhead = 6e-6;

  /// Relative compute speed per node (1.0 = nominal). Empty = homogeneous.
  /// Synchronous SPMD training is paced by the slowest participant — the
  /// heterogeneity Whale's hardware-aware balancing targets (§2.3.1).
  std::vector<double> node_speeds;

  int world() const { return num_nodes * gpus_per_node; }
  bool spans_nodes() const { return num_nodes > 1; }

  /// Speed of the slowest node (what every synchronous step waits for).
  double slowest_node_speed() const {
    if (node_speeds.empty()) return 1.0;
    double slowest = node_speeds.front();
    for (double s : node_speeds) slowest = std::min(slowest, s);
    return std::max(slowest, 1e-6);
  }

  /// Sustained FLOP/s after the straggler penalty.
  double effective_flops() const {
    return flops_per_gpu * slowest_node_speed();
  }

  /// Bottleneck ring bandwidth for a collective over `group` devices:
  /// groups confined to one node ride the fast fabric, anything larger is
  /// throttled by the per-node NIC.
  double ring_bandwidth(int group) const {
    return group <= gpus_per_node ? intra_bw : inter_bw;
  }
  double ring_latency(int group) const {
    return group <= gpus_per_node ? intra_latency : inter_latency;
  }

  /// One 8-GPU V100 node (the paper's 8w setting).
  static ClusterSpec v100_node() { return ClusterSpec{}; }
  /// `nodes` × 8 V100s over 32 Gbps Ethernet (16w = v100_cluster(2)).
  static ClusterSpec v100_cluster(int nodes) {
    ClusterSpec c;
    c.num_nodes = nodes;
    return c;
  }
};

}  // namespace tap::cost
