// Batched candidate costing (ISSUE 6): the planner's hottest loop —
// cost::comm_cost over thousands of routed candidates per family and per
// (dp, tp) mesh point — rewritten as a structure-of-arrays pipeline.
//
// A CommEventBatch collects the comm events of up to kCostBatchWidth
// routed candidates into parallel arrays (bytes, group, efficiency,
// phase/overlap masks, ...), one lane per candidate, zero-padded to the
// deepest lane. comm_cost_batch() then reduces all lanes in one pass
// through either the scalar reference kernel or the AVX2 SPMD kernel
// (cost/comm_kernel.h), selected once per process by CPU capability and
// overridable with TAP_FORCE_SCALAR=1. Both kernels produce bit-identical
// cost doubles: vectorization is across independent candidates only, so
// each candidate's accumulation order — and therefore every plan byte,
// cache key, and report — is unchanged.
//
// CostArena is the per-thread scratch that makes the fill allocation-free
// in steady state: reusable routing buffers (probe + exit-spec route, the
// satellite fix for FamilySearchContext::score's per-candidate vector
// churn) plus the batch and its result slots. Policies obtain one via
// tls_cost_arena().
#pragma once

#include <optional>

#include "cost/comm_kernel.h"
#include "cost/cost_model.h"
#include "sharding/routing.h"

namespace tap::cost {

/// Which kernel serves comm_cost_batch() calls.
enum class CostKernel : std::uint8_t { kScalar, kAvx2 };

const char* cost_kernel_name(CostKernel k);

/// Candidate lanes the kernel evaluates per pass: kCostBatchWidth for the
/// AVX2 kernel, 1 for the scalar reference (it walks lanes one by one).
int cost_kernel_width(CostKernel k);

/// The process-wide kernel decision, made once on first use: AVX2 when
/// the binary carries the kernel and the CPU supports it, unless
/// TAP_FORCE_SCALAR is set to anything but "0". Also publishes the
/// cost.kernel_width gauge.
CostKernel active_cost_kernel();

/// Test hook: force the kernel for subsequent comm_cost_batch() calls
/// (nullopt restores the environment/CPU decision). Requesting kAvx2 on a
/// host without the kernel throws. Not thread-safe; call from test setup
/// only.
void set_cost_kernel_for_testing(std::optional<CostKernel> k);

/// SoA batch of the comm events of up to kCostBatchWidth routed
/// candidates. Event slot (row r, lane l) lives at index
/// r * kCostBatchWidth + l; lanes shorter than rows() are zero-padded, so
/// padding rows cost +0.0 in every kernel.
class CommEventBatch {
 public:
  /// Drops all lanes; keeps the row capacity (steady-state reuse).
  void reset();

  int lanes() const { return lanes_; }
  bool empty() const { return lanes_ == 0; }
  bool full() const { return lanes_ == kCostBatchWidth; }
  std::size_t rows() const { return rows_; }

  /// Copies `routed`'s comm events into the next lane, resolving each
  /// event's collective group against `num_shards` (comm_cost's rule) and
  /// recording the candidate's overlap options. Returns the lane index.
  /// Precondition: !full() and routed.valid.
  int add_candidate(const sharding::RoutedPlan& routed, int num_shards,
                    const CostOptions& opts);

  /// Read-only kernel view over the current contents bound to `cluster`'s
  /// uniform scalars. Valid until the next add_candidate/reset.
  CommBatchView view(const ClusterSpec& cluster) const;

 private:
  void ensure_rows(std::size_t rows);

  int lanes_ = 0;
  std::size_t rows_ = 0;      ///< deepest lane's event count
  std::size_t row_cap_ = 0;   ///< allocated rows
  std::vector<std::size_t> lane_events_;  ///< events per lane

  // Event slots, row-major (see class comment). Masks are all-ones /
  // all-zeros 64-bit patterns the AVX2 kernel loads directly as blends.
  std::vector<double> bytes_d_, count_d_, group_d_, eff_, wire_mul_,
      steps_mul_;
  std::vector<std::uint64_t> m_active_, m_overlap_, m_backward_, m_cross_,
      m_broadcast_;
  std::vector<std::int64_t> bytes_count_;

  // Per-lane overlap options.
  double window_[kCostBatchWidth] = {};
  double frac_[kCostBatchWidth] = {};
};

/// Costs every lane of `batch` on `cluster` with the active kernel,
/// writing one PlanCost per lane into out[0 .. batch.lanes()). Each
/// lane's doubles are bit-identical to
/// comm_cost(routed, num_shards, cluster, opts) for the candidate that
/// filled it. Bumps cost.batches / cost.candidates_batched.
void comm_cost_batch(const CommEventBatch& batch, const ClusterSpec& cluster,
                     PlanCost out[kCostBatchWidth]);

/// comm_cost_batch with an explicit kernel — the differential tests and
/// the microbench drive both implementations over identical batches.
void comm_cost_batch_with(CostKernel kernel, const CommEventBatch& batch,
                          const ClusterSpec& cluster,
                          PlanCost out[kCostBatchWidth]);

/// Per-thread scratch for batched candidate evaluation: the routing
/// buffers score/stage reuse across candidates (no RoutedPlan vector
/// churn) plus the event batch and its result slots.
struct CostArena {
  sharding::RoutingScratch routing;
  sharding::RoutedPlan probe;   ///< replicated-boundary probe route
  sharding::RoutedPlan routed;  ///< steady-state (exit-spec) route
  CommEventBatch batch;
  PlanCost results[kCostBatchWidth];
};

/// The calling thread's CostArena (function-local thread_local).
CostArena& tls_cost_arena();

}  // namespace tap::cost
