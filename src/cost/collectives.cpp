#include "cost/collectives.h"

namespace tap::cost {

using sharding::Collective;

double collective_efficiency(Collective c) {
  switch (c) {
    case Collective::kAllReduce:
      return 0.92;  // NCCL's best-tuned path
    case Collective::kReduceScatter:
      return 0.85;
    case Collective::kAllGather:
      return 0.75;
    case Collective::kBroadcast:
      return 0.80;
    case Collective::kAllToAll:
      return 0.55;  // the slowest per byte (§4.6)
    case Collective::kNone:
      return 1.0;
  }
  return 1.0;
}

double collective_wire_bytes(Collective c, std::int64_t bytes, int group) {
  if (c == Collective::kNone || group <= 1 || bytes <= 0) return 0.0;
  const double p = static_cast<double>(group);
  const double b = static_cast<double>(bytes);
  switch (c) {
    case Collective::kAllReduce:
      return 2.0 * (p - 1.0) / p * b;
    case Collective::kAllGather:
    case Collective::kReduceScatter:
    case Collective::kAllToAll:
      return (p - 1.0) / p * b;
    case Collective::kBroadcast:
      return b;
    case Collective::kNone:
      return 0.0;
  }
  return 0.0;
}

double collective_time(Collective c, std::int64_t bytes, int group,
                       const ClusterSpec& cluster, bool cross_node) {
  if (c == Collective::kNone || group <= 1 || bytes <= 0) return 0.0;
  const double wire = collective_wire_bytes(c, bytes, group);
  const bool inter = cross_node && cluster.spans_nodes();
  const double raw_bw =
      inter ? cluster.inter_bw : cluster.ring_bandwidth(group);
  const double bw = raw_bw * collective_efficiency(c);
  const double lat =
      inter ? cluster.inter_latency : cluster.ring_latency(group);
  // Ring step count: AllReduce does reduce-scatter + all-gather.
  const int steps =
      (c == Collective::kAllReduce) ? 2 * (group - 1) : (group - 1);
  return static_cast<double>(steps) * lat + wire / bw;
}

}  // namespace tap::cost
