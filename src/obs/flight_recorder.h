// tap::obs — the per-shard flight recorder (ISSUE 9): an always-on,
// fixed-size ring of per-request summaries, in the Google "flight
// recorder" idiom — when a request goes wrong in production, the last K
// requests are already in memory, with trace ids, provenance, and
// timing, at a cost the hot path cannot feel.
//
// Cost model. record() on the uncontended path is one relaxed load
// (enabled?), one relaxed fetch_add (claim a slot), one uncontended
// atomic exchange pair (the slot guard), and a ~300-byte POD copy — no
// locks, no allocation, no syscalls. The ring is lossy BY DESIGN: if a
// writer ever lands on a slot another writer or reader holds (requires
// `capacity` in-flight requests, or a racing snapshot), the record is
// dropped and counted, never blocked on. snapshot() is the same
// try-acquire per slot, so readers never stall writers either.
//
// Memory bound: capacity * sizeof(FlightRecord) — ~512 slots * ~330 B
// ≈ 170 KiB per shard, fixed at construction, independent of traffic.
//
// Slow-request capture: every record carries space for up to kMaxSpans
// pipeline pass timings; the handler keeps them only for requests over
// the recorder's slow_ms threshold, so `/debug/requests` shows WHERE a
// slow plan spent its time without retaining span lists for the fast
// majority.
//
// FlightRecord strings are fixed-size char arrays (truncating copies)
// so the record is trivially copyable and the ring never owns heap
// memory; callers pass static-storage or short identifier strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tap::obs {

/// One request summary. POD: safe to copy in and out of ring slots.
struct FlightRecord {
  static constexpr std::size_t kMaxSpans = 8;

  std::uint64_t seq = 0;  ///< 1-based admission index (assigned by record())
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t key_digest = 0;  ///< PlanKey digest; 0 for non-plan routes
  std::uint16_t status = 0;      ///< HTTP status answered
  bool sampled = false;
  float queue_ms = 0.0f;   ///< wait before the search task ran
  float handle_ms = 0.0f;  ///< whole handler wall time
  float search_ms = 0.0f;  ///< planner search wall time (0 on cache hits)
  char route[16] = {};          ///< "plan", "explain", "metrics", ...
  char served[12] = {};         ///< "searched|memory|disk|coalesced|..."
  char provenance[12] = {};     ///< "complete|anytime|fallback|incr"
  char deadline_class[12] = {};
  char reason[24] = {};  ///< shed/fallback/reject reason, "" when none

  struct Span {
    char name[20] = {};
    float ms = 0.0f;
  };
  std::uint8_t span_count = 0;  ///< > 0 only for slow-captured requests
  Span spans[kMaxSpans];
};

/// Truncating copy into a FlightRecord char-array field.
void set_record_field(char* dst, std::size_t cap, std::string_view value);

class FlightRecorder {
 public:
  /// `capacity` is rounded up to at least 2; `slow_ms` is the handler's
  /// span-retention threshold (surfaced via slow_ms() — the recorder
  /// itself stores whatever it is given).
  explicit FlightRecorder(std::size_t capacity = 512, double slow_ms = 250.0);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Admits one record (lock-free, lossy under pathological contention).
  /// Assigns rec.seq. No-op when disabled.
  void record(FlightRecord rec);

  /// The newest `last_n` admitted records, newest first. Skips slots a
  /// writer holds mid-copy (counted in dropped() only when written over).
  std::vector<FlightRecord> snapshot(std::size_t last_n) const;

  /// GET /debug/requests payload: {"capacity":..,"slow_ms":..,
  /// "total":..,"dropped":..,"requests":[newest first]}.
  std::string to_json(std::size_t last_n) const;

  /// Runtime kill switch: when disabled, record() is a single relaxed
  /// load. The bench's overhead gate compares enabled vs disabled.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records ever admitted (monotonic, includes overwritten ones).
  std::uint64_t total() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Records lost to slot contention (see class comment).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  double slow_ms() const { return slow_ms_; }

 private:
  struct Slot {
    /// Try-acquire guard: writers and readers exchange(true) and skip the
    /// slot on contention, so slot access is data-race-free without ever
    /// blocking.
    std::atomic<bool> busy{false};
    FlightRecord rec;
  };

  std::size_t capacity_;
  double slow_ms_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace tap::obs
