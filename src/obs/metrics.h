// tap::obs — the unified observability layer every subsystem reports
// through (ISSUE 3). Two halves:
//
//   * MetricsRegistry (this header): named counters / gauges /
//     fixed-bucket histograms. Registration (name -> handle) takes a
//     mutex once; after that every update is a relaxed atomic on the
//     handle — the fast path is lock-free and allocation-free, safe to
//     leave compiled into production hot paths.
//   * TraceSession (obs/trace.h): scoped spans exported as Chrome
//     trace-event JSON, sharing one schema with sim::Trace.
//
// Metric names are hierarchical, dot-separated, lowercase, with the unit
// as the last suffix where one applies:
//
//   planner.pass.prune_ms       histogram, wall ms of one Prune pass
//   planner.family.candidates   counter, candidate plans enumerated
//   cache.mem.hits              counter, PlanCache memory-tier hits
//   service.coalesced           counter, single-flight joins
//   pool.queue_depth            gauge, submit() tasks waiting
//   pool.task_wait_ms           histogram, submit() queue latency
//   cost.kernel_width           gauge, lanes per batch-cost pass (8=AVX2)
//   cost.batches                counter, comm_cost_batch kernel passes
//   cost.candidates_batched     counter, candidate lanes costed
//
// Labels (ISSUE 9): a name may carry Prometheus labels after a '|' —
// "net.http.request_ms|route=plan" or "...|route=plan,shard=0". The
// registry treats the whole string as the metric identity (each label
// set is its own lock-free handle, registered once, cached by the call
// site), and dump_prometheus() splits at the '|' to emit
// tap_net_http_request_ms_bucket{route="plan",le="..."} with one
// `# TYPE` line per family. dump_json() keys keep the full spelling.
// Keep label sets small and closed (routes, deadline classes) —
// cardinality is a registration mutex entry per combination.
//
// The process-wide registry is obs::registry(); subsystems cache handle
// pointers (handles live as long as the registry, which is never
// destroyed before exit). Tests instantiate their own MetricsRegistry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tap::obs {

/// Monotonically increasing event count. All methods are lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (queue depths, sizes). add() supports
/// up/down adjustment from concurrent writers; both paths are lock-free
/// (add is a CAS loop on the double's bit pattern).
class Gauge {
 public:
  void set(double v) { bits_.store(to_bits(v), std::memory_order_relaxed); }
  void add(double d) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, to_bits(from_bits(cur) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }
  void reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t b);

  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in
/// ascending order, plus an implicit +inf overflow bucket. observe() is
/// lock-free: one bucket fetch_add, one count fetch_add, one CAS loop for
/// the running sum. Bucket boundaries are fixed at registration so
/// concurrent observers never reshape anything.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket `i` (i == bounds().size() is the overflow
  /// bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

  /// Default wall-time buckets, milliseconds: 0.01 .. 10'000 in decade
  /// steps of 1/2.5/5 — covers a disabled-span nanosecond up to a cold
  /// mesh sweep.
  static std::vector<double> default_ms_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Name -> handle registry. Handles are stable for the registry's
/// lifetime; re-registering a name returns the existing handle (so every
/// call site may independently say registry().counter("cache.mem.hits")).
/// A name registered as one kind and requested as another throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// `bounds` applies only when the name is first registered.
  Histogram* histogram(std::string_view name, std::vector<double> bounds =
                                                  Histogram::default_ms_bounds());

  /// Machine-readable snapshot of every metric, sorted by name:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:
  ///    {"count":N,"sum":S,"buckets":[{"le":B,"count":N},...]}}}
  std::string dump_json() const;

  /// Prometheus text exposition of the same snapshot: every metric gets a
  /// `# TYPE` line; histograms expose cumulative `_bucket{le="..."}`
  /// series (including the `+Inf` bucket) plus `_sum` and `_count`. Names
  /// are prefixed "tap_" and sanitized (every non-alphanumeric character,
  /// notably the hierarchical '.', becomes '_').
  std::string dump_prometheus() const;

  /// Registered histogram names, sorted (for consumers — the report's
  /// latency section — that iterate without registering anything).
  std::vector<std::string> histogram_names() const;

  /// Zeroes every value (handles stay valid). For tests and for benches
  /// isolating one phase.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every subsystem reports into.
MetricsRegistry& registry();

/// dump_json() of the process-wide registry — what `tap_cli --stats` and
/// the bench JSON emitter write.
std::string dump_json();

/// dump_prometheus() of the process-wide registry.
std::string dump_prometheus();

/// Prometheus-style quantile estimate (q in [0, 1]) from a histogram's
/// fixed buckets: linear interpolation inside the bucket holding the q-th
/// observation, assuming uniform spread within the bucket (the first
/// bucket interpolates from 0, the +inf overflow bucket clamps to the
/// largest finite bound). Returns 0 for an empty histogram.
double histogram_quantile(const Histogram& h, double q);

}  // namespace tap::obs
