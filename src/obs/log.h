// tap::obs — structured JSON access logging for the serving tier
// (ISSUE 9). One line per admitted request, machine-parseable, append
// mode, wired into `tap_serve --access-log FILE`.
//
// The logger reuses FlightRecord as its payload, so the access log and
// the flight recorder can never disagree about a request. Admission is
// two-stage: the request must be sampled (the traceparent flag — a
// client sending flags 00 opts its requests out), then a deterministic
// 1-in-N counter (`sample_every`) thins high-volume tiers.
//
// The log line is the ONLY place in the serving tier wall-clock time is
// written next to a trace id ("ts_ms", unix milliseconds) — plan bytes,
// report bytes, and wire JSON stay a pure function of the PlanKey
// (ISSUE 9's determinism boundary; see DESIGN.md §14).
//
// Writes are serialized under a mutex and flushed per line: the drain
// path and crash forensics both want complete lines over throughput,
// and sampling already bounds the write rate.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/flight_recorder.h"

namespace tap::obs {

class AccessLogger {
 public:
  /// Opens `path` in append mode ("-" writes to stdout). `sample_every`
  /// admits every N-th sampled request (1 = all, 0 behaves as 1).
  explicit AccessLogger(const std::string& path,
                        std::uint64_t sample_every = 1);
  ~AccessLogger();

  AccessLogger(const AccessLogger&) = delete;
  AccessLogger& operator=(const AccessLogger&) = delete;

  /// False when the path could not be opened (the caller decides whether
  /// that is fatal; tap_serve treats it as a startup error).
  bool ok() const { return f_ != nullptr; }

  /// Writes one JSON line for `rec` if it passes sampling. Returns
  /// whether a line was written. Thread-safe.
  bool log(const FlightRecord& rec);

  /// Lines actually written (for the drain summary).
  std::uint64_t lines() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  std::FILE* f_ = nullptr;
  bool owns_file_ = false;
  std::uint64_t sample_every_ = 1;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::mutex mu_;
};

/// The JSON line log() writes for `rec` (exposed for tests; no trailing
/// newline). `ts_ms` is the caller-supplied wall timestamp.
std::string access_log_line(const FlightRecord& rec, std::int64_t ts_ms);

}  // namespace tap::obs
