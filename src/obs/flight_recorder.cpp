#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/json.h"

namespace tap::obs {

namespace {

std::string hex64(std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(16);
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kHex[(v >> shift) & 0xf]);
  return out;
}

double round_ms(double ms) { return std::round(ms * 1000.0) / 1000.0; }

}  // namespace

void set_record_field(char* dst, std::size_t cap, std::string_view value) {
  const std::size_t n = std::min(value.size(), cap - 1);
  std::memcpy(dst, value.data(), n);
  dst[n] = '\0';
}

FlightRecorder::FlightRecorder(std::size_t capacity, double slow_ms)
    : capacity_(std::max<std::size_t>(capacity, 2)),
      slow_ms_(slow_ms),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::record(FlightRecord rec) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[seq % capacity_];
  if (slot.busy.exchange(true, std::memory_order_acquire)) {
    // Another writer (capacity requests behind/ahead) or a snapshot holds
    // the slot: drop rather than wait — the recorder must never add a
    // stall to the request path.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rec.seq = seq;
  slot.rec = rec;
  slot.busy.store(false, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::snapshot(std::size_t last_n) const {
  std::vector<FlightRecord> out;
  out.reserve(std::min(last_n, capacity_));
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    if (slot.busy.exchange(true, std::memory_order_acquire)) continue;
    if (slot.rec.seq != 0) out.push_back(slot.rec);
    slot.busy.store(false, std::memory_order_release);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq > b.seq;  // newest first
            });
  if (out.size() > last_n) out.resize(last_n);
  return out;
}

std::string FlightRecorder::to_json(std::size_t last_n) const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("capacity",
          util::JsonValue::number(static_cast<double>(capacity_)));
  doc.set("slow_ms", util::JsonValue::number(slow_ms_));
  doc.set("total", util::JsonValue::number(static_cast<double>(total())));
  doc.set("dropped",
          util::JsonValue::number(static_cast<double>(dropped())));
  util::JsonValue reqs = util::JsonValue::array();
  for (const FlightRecord& r : snapshot(last_n)) {
    util::JsonValue e = util::JsonValue::object();
    e.set("seq", util::JsonValue::number(static_cast<double>(r.seq)));
    e.set("trace",
          util::JsonValue::string(hex64(r.trace_hi) + hex64(r.trace_lo)));
    e.set("key", util::JsonValue::string(
                     r.key_digest != 0 ? hex64(r.key_digest) : ""));
    e.set("route", util::JsonValue::string(r.route));
    e.set("status", util::JsonValue::number(r.status));
    e.set("served", util::JsonValue::string(r.served));
    e.set("provenance", util::JsonValue::string(r.provenance));
    e.set("deadline_class", util::JsonValue::string(r.deadline_class));
    e.set("reason", util::JsonValue::string(r.reason));
    e.set("sampled", util::JsonValue::boolean(r.sampled));
    e.set("queue_ms", util::JsonValue::number(round_ms(r.queue_ms)));
    e.set("handle_ms", util::JsonValue::number(round_ms(r.handle_ms)));
    e.set("search_ms", util::JsonValue::number(round_ms(r.search_ms)));
    if (r.span_count > 0) {
      util::JsonValue spans = util::JsonValue::array();
      const std::size_t n =
          std::min<std::size_t>(r.span_count, FlightRecord::kMaxSpans);
      for (std::size_t i = 0; i < n; ++i) {
        util::JsonValue s = util::JsonValue::object();
        s.set("name", util::JsonValue::string(r.spans[i].name));
        s.set("ms", util::JsonValue::number(round_ms(r.spans[i].ms)));
        spans.push_back(std::move(s));
      }
      e.set("spans", std::move(spans));
    }
    reqs.push_back(std::move(e));
  }
  doc.set("requests", std::move(reqs));
  return doc.dump();
}

}  // namespace tap::obs
