#include "obs/request_context.h"

#include <atomic>
#include <chrono>

#include "util/hash.h"

namespace tap::obs {

namespace {

thread_local const RequestContext* t_current = nullptr;

/// Per-process id stream: a seed mixed from the steady clock and a heap
/// address at first use (so two processes started together diverge), then
/// one splitmix64 step per id. Uniqueness within a process is guaranteed
/// by the counter; across processes it is probabilistic, like any trace
/// id scheme.
std::uint64_t next_id() {
  static const std::uint64_t seed = [] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    static int anchor = 0;
    return util::splitmix64(
        static_cast<std::uint64_t>(now.count()) ^
        (reinterpret_cast<std::uintptr_t>(&anchor) << 16));
  }();
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = util::splitmix64(seed + n);
  return id != 0 ? id : 1;  // 0 is the W3C invalid-id sentinel
}

void hex_append(std::string* out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out->push_back(kHex[(v >> shift) & 0xf]);
}

/// Parses exactly `n` lowercase hex chars (the W3C header is lowercase
/// by spec; uppercase is malformed). Returns false on any other byte.
bool parse_hex(std::string_view s, std::size_t pos, std::size_t n,
               std::uint64_t* out) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = s[pos + i];
    std::uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

}  // namespace

std::string RequestContext::trace_hex() const {
  std::string out;
  out.reserve(32);
  hex_append(&out, trace_hi);
  hex_append(&out, trace_lo);
  return out;
}

std::string RequestContext::span_hex() const {
  std::string out;
  out.reserve(16);
  hex_append(&out, span_id);
  return out;
}

RequestContext generate_request_context(bool sampled) {
  RequestContext ctx;
  ctx.trace_hi = next_id();
  ctx.trace_lo = next_id();
  ctx.span_id = next_id();
  ctx.sampled = sampled;
  return ctx;
}

std::uint64_t next_span_id() { return next_id(); }

bool parse_traceparent(std::string_view header, RequestContext* ctx) {
  // Fixed layout: vv-tttttttttttttttttttttttttttttttt-pppppppppppppppp-ff
  //               0  3                                36               53
  constexpr std::size_t kLen = 55;
  if (header.size() < kLen) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-')
    return false;
  std::uint64_t version = 0;
  if (!parse_hex(header, 0, 2, &version)) return false;
  if (version == 0xff) return false;  // forbidden by the spec
  if (version == 0x00) {
    // Version 00 is exactly 55 chars — trailing data is malformed.
    if (header.size() != kLen) return false;
  } else {
    // Future versions: parse the 00-shaped prefix, ignore the rest, but
    // any extra data must be dash-separated.
    if (header.size() > kLen && header[kLen] != '-') return false;
  }
  std::uint64_t hi = 0, lo = 0, parent = 0, flags = 0;
  if (!parse_hex(header, 3, 16, &hi) || !parse_hex(header, 19, 16, &lo) ||
      !parse_hex(header, 36, 16, &parent) ||
      !parse_hex(header, 53, 2, &flags)) {
    return false;
  }
  if ((hi | lo) == 0 || parent == 0) return false;  // all-zero ids invalid
  ctx->trace_hi = hi;
  ctx->trace_lo = lo;
  ctx->parent_span_id = parent;
  ctx->span_id = 0;  // the receiving hop assigns its own
  ctx->sampled = (flags & 0x01) != 0;
  return true;
}

std::string format_traceparent(const RequestContext& ctx) {
  std::string out;
  out.reserve(55);
  out += "00-";
  hex_append(&out, ctx.trace_hi);
  hex_append(&out, ctx.trace_lo);
  out.push_back('-');
  hex_append(&out, ctx.span_id);
  out += ctx.sampled ? "-01" : "-00";
  return out;
}

const RequestContext* current_request_context() { return t_current; }

ScopedRequestContext::ScopedRequestContext(const RequestContext& ctx)
    : ctx_(ctx), prev_(t_current) {
  t_current = &ctx_;
}

ScopedRequestContext::~ScopedRequestContext() { t_current = prev_; }

}  // namespace tap::obs
