// tap::obs — request-scoped context propagation (ISSUE 9), the identity
// half of the observability layer (metrics/trace are the measurement
// half).
//
// A RequestContext names one serving-tier request end to end: a 128-bit
// trace id shared by every hop (client, shard, planner pass), a 64-bit
// span id per hop, the upstream hop's span id as the parent, a sampled
// flag, and the request's deadline class. It travels between processes
// as a W3C `traceparent` header (version 00):
//
//   00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// parse_traceparent is strict where the spec is strict (length, dash
// positions, lowercase-hex-only fields, all-zero ids invalid, version ff
// invalid) and lenient where it demands leniency (future versions parse
// their 00-shaped prefix and ignore trailing data). A parse failure is
// never an error to the caller: the serving tier falls back to a fresh
// locally generated trace id, so hostile or truncated headers cost
// nothing but the correlation they failed to carry.
//
// Within a process the current context rides a thread-local, installed
// RAII-style by ScopedRequestContext: the HTTP handler installs the
// parsed (or fresh) context, the PlannerService captures it into the
// worker task that runs the search, and the pipeline's pass spans read
// current_request_context() to tag trace ids onto TraceSession events —
// no API threading through layers that do not care.
//
// Determinism boundary: trace ids exist ONLY in headers, trace events,
// logs, and the flight recorder. Plan/report/wire JSON never contains
// one (the serve-tier byte-identity tests pin this down).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tap::obs {

struct RequestContext {
  std::uint64_t trace_hi = 0;  ///< 128-bit trace id, high half
  std::uint64_t trace_lo = 0;
  /// This hop's span id (what WE put in the parent-id field when
  /// forwarding). parse_traceparent leaves it 0 — the receiving hop
  /// assigns its own via next_span_id().
  std::uint64_t span_id = 0;
  /// The upstream hop's span id (the header's parent-id field).
  std::uint64_t parent_span_id = 0;
  /// W3C trace-flags bit 0: the upstream asked for this request to be
  /// recorded. Controls access-log admission, never the flight recorder.
  bool sampled = true;
  /// Serving deadline class ("none"/"tight"/"standard"/"relaxed", see
  /// core::deadline_class_name). Always a static-storage string.
  const char* deadline_class = "none";

  bool valid() const { return (trace_hi | trace_lo) != 0; }

  std::string trace_hex() const;  ///< 32 lowercase hex chars
  std::string span_hex() const;   ///< 16 lowercase hex chars
};

/// Fresh root context: unique 128-bit trace id and span id (splitmix64
/// over a per-process seed + atomic counter — no wall clock involved).
RequestContext generate_request_context(bool sampled = true);

/// Fresh span id for a new hop inside an existing trace (never 0).
std::uint64_t next_span_id();

/// Parses a `traceparent` header value into `ctx` (trace id, parent span,
/// sampled — span_id stays 0 for the caller to assign). Returns false on
/// anything malformed; `ctx` is untouched on failure. Never throws.
bool parse_traceparent(std::string_view header, RequestContext* ctx);

/// The version-00 header spelling of `ctx`: its span_id becomes the
/// parent-id field the next hop will see.
std::string format_traceparent(const RequestContext& ctx);

/// The context installed on this thread, or nullptr.
const RequestContext* current_request_context();

/// Installs a context as current_request_context() for the enclosing
/// scope, restoring the previous one (nesting-safe) on destruction.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& ctx);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

  const RequestContext& context() const { return ctx_; }

 private:
  RequestContext ctx_;
  const RequestContext* prev_;
};

}  // namespace tap::obs
