#include "obs/log.h"

#include <chrono>
#include <cmath>

#include "util/json.h"

namespace tap::obs {

namespace {

std::string hex64(std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(16);
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kHex[(v >> shift) & 0xf]);
  return out;
}

double round_ms(double ms) { return std::round(ms * 1000.0) / 1000.0; }

}  // namespace

std::string access_log_line(const FlightRecord& rec, std::int64_t ts_ms) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("ts_ms", util::JsonValue::number(static_cast<double>(ts_ms)));
  doc.set("trace", util::JsonValue::string(hex64(rec.trace_hi) +
                                           hex64(rec.trace_lo)));
  doc.set("route", util::JsonValue::string(rec.route));
  doc.set("status", util::JsonValue::number(rec.status));
  doc.set("key", util::JsonValue::string(
                     rec.key_digest != 0 ? hex64(rec.key_digest) : ""));
  doc.set("served", util::JsonValue::string(rec.served));
  doc.set("provenance", util::JsonValue::string(rec.provenance));
  doc.set("deadline_class", util::JsonValue::string(rec.deadline_class));
  doc.set("reason", util::JsonValue::string(rec.reason));
  doc.set("queue_ms", util::JsonValue::number(round_ms(rec.queue_ms)));
  doc.set("handle_ms", util::JsonValue::number(round_ms(rec.handle_ms)));
  doc.set("search_ms", util::JsonValue::number(round_ms(rec.search_ms)));
  return doc.dump();
}

AccessLogger::AccessLogger(const std::string& path,
                           std::uint64_t sample_every)
    : sample_every_(sample_every == 0 ? 1 : sample_every) {
  if (path == "-") {
    f_ = stdout;
    owns_file_ = false;
  } else {
    f_ = std::fopen(path.c_str(), "a");
    owns_file_ = f_ != nullptr;
  }
}

AccessLogger::~AccessLogger() {
  if (f_ != nullptr && owns_file_) std::fclose(f_);
}

bool AccessLogger::log(const FlightRecord& rec) {
  if (f_ == nullptr) return false;
  if (!rec.sampled) return false;
  const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
  if (n % sample_every_ != 0) return false;
  const std::int64_t ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const std::string line = access_log_line(rec, ts_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), f_);
    std::fputc('\n', f_);
    std::fflush(f_);
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace tap::obs
