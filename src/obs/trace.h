// tap::obs — cross-subsystem tracing (the second half of the
// observability layer; metrics live in obs/metrics.h).
//
// One schema. TraceEvent + chrome_trace_json() define the Chrome
// trace-event JSON every producer exports — the planner's pass spans, the
// PlannerService's async request spans, the PlanCache's instant events,
// and sim::Trace (whose to_chrome_json() is now a thin adapter over this
// writer). Because the schema is shared, a planner run, a service request
// storm, and a simulated training step land on ONE timeline that
// chrome://tracing / Perfetto renders directly.
//
// One session. A TraceSession collects events while active. Producers
// never name the session: they call the free helpers (or TAP_SPAN), which
// consult a process-global atomic session pointer. With no active session
// the guard is a single relaxed atomic load — no clock read, no
// allocation, no branch into the slow path — so the instrumentation is
// compiled into production hot paths and measured (tests/test_obs.cpp,
// bench assertions) to cost nothing when tracing is off.
//
// Threading. Events are appended to per-thread buffers (registered under
// the session mutex on a thread's first event, lock-free afterwards), so
// ThreadPool workers trace without contending. The buffers merge at
// export. Spans opened on a thread must close on that thread (RAII
// guarantees it); work that migrates across threads — a service request
// submitted on one thread, completed on another — uses the explicit
// async_begin / async_end pair, which Chrome renders as a nestable async
// span keyed by id.
//
// Lifetime. stop() (or destruction) deactivates the session; deactivate
// before destroying, and only after joining any threads still tracing
// (in-flight ScopedSpans hold the session pointer they captured at open).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tap::obs {

/// One trace event in the shared schema (timestamps in microseconds, the
/// Chrome trace-event native unit).
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,    ///< "X": start + duration
    kInstant,     ///< "i": a point in time (cache hit, coalesce)
    kAsyncBegin,  ///< "b": explicit begin, paired by id
    kAsyncEnd,    ///< "e": explicit end, paired by id
  };

  std::string name;
  std::string category;
  Phase phase = Phase::kComplete;
  double start_us = 0.0;
  double dur_us = 0.0;      ///< kComplete only
  int pid = 0;              ///< timeline process (0 = planner, 1 = simulator)
  std::int64_t tid = 0;     ///< timeline lane (thread, or sim stream)
  std::uint64_t id = 0;     ///< pairs kAsyncBegin with kAsyncEnd
  /// Perfetto-visible attributes ("bytes", "collective", "shape", ...),
  /// emitted as the Chrome JSON "args" object when non-empty.
  std::map<std::string, std::string> args;
};

/// Serializes `events` as Chrome trace-event JSON ({"traceEvents":[...]}).
/// `process_names` adds "M" metadata records so Perfetto labels the pid
/// rows ("planner", "simulated step", ...).
std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::map<int, std::string>& process_names = {});

class TraceSession;

/// The active session, or nullptr. One relaxed atomic load — THE disabled
/// fast path; everything else in this header hides behind it.
TraceSession* active_session();

/// True while some TraceSession is started.
inline bool tracing_enabled() { return active_session() != nullptr; }

/// Microseconds on the steady clock (session timestamps are taken
/// relative to TraceSession::start()).
double steady_now_us();

class TraceSession {
 public:
  TraceSession() = default;
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Activates this session as the process-global event sink. At most one
  /// session is active at a time.
  void start();
  /// Deactivates (new spans no-op again) — idempotent.
  void stop();
  bool active() const;

  /// Microseconds since start().
  double now_us() const;

  /// Appends a complete ("X") event with caller-supplied coordinates —
  /// the import hook sim::Trace::append_to() and tests use to place
  /// foreign events on this timeline. Thread-safe, works after stop().
  void add_complete(std::string name, std::string category, double start_us,
                    double dur_us, int pid, std::int64_t tid,
                    std::map<std::string, std::string> args = {});

  /// Point event on the calling thread's lane. No-op unless active.
  /// `args` land in the event's Perfetto-visible args object (e.g. a
  /// request's trace id).
  void instant(std::string name, std::string category,
               std::map<std::string, std::string> args = {});

  /// Explicit begin/end for work that crosses threads; `id` pairs them.
  /// No-op unless active.
  void async_begin(std::string name, std::string category, std::uint64_t id,
                   std::map<std::string, std::string> args = {});
  void async_end(std::string name, std::string category, std::uint64_t id);

  /// Merged snapshot of every thread's buffer (stable order: thread
  /// registration order, then append order). Call after stop().
  std::vector<TraceEvent> events() const;

  /// chrome_trace_json over events(), labelling pid 0 "planner" and
  /// pid 1 "simulated step".
  std::string to_chrome_json() const;

  std::size_t thread_buffer_count() const;

 private:
  friend class ScopedSpan;
  friend TraceSession* active_session();

  struct ThreadBuffer {
    std::int64_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer& local_buffer();
  void append(TraceEvent e);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> foreign_;  ///< add_complete() imports (own tids)
  double t0_us_ = 0.0;
  std::uint64_t epoch_ = 0;  ///< distinguishes sessions at a reused address
};

/// RAII complete-event span. Construction with no active session is the
/// measured near-zero path: one atomic load, the name pointer is not even
/// copied into a std::string.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "planner");
  explicit ScopedSpan(const std::string& name,
                      const char* category = "planner");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value to the span's args (request trace ids, byte
  /// counts, ...). No-op — not even a string copy — when the span opened
  /// with no active session.
  void arg(std::string key, std::string value);

 private:
  TraceSession* session_;  ///< captured once; null = disabled span
  std::string name_;
  const char* category_ = nullptr;
  double start_us_ = 0.0;
  std::map<std::string, std::string> args_;
};

}  // namespace tap::obs

#define TAP_OBS_CONCAT_INNER(a, b) a##b
#define TAP_OBS_CONCAT(a, b) TAP_OBS_CONCAT_INNER(a, b)
/// Opens a scoped trace span for the rest of the enclosing block.
#define TAP_SPAN(...) \
  ::tap::obs::ScopedSpan TAP_OBS_CONCAT(tap_span_, __LINE__)(__VA_ARGS__)
