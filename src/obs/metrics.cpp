#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

#include "util/check.h"

namespace tap::obs {

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

std::uint64_t Gauge::to_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    TAP_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  // Linear scan: bucket lists are short (a dozen decade steps) and the
  // scan touches no shared state until the single fetch_add.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double s;
    std::memcpy(&s, &cur, sizeof(s));
    s += v;
    std::uint64_t next;
    std::memcpy(&next, &s, sizeof(next));
    if (sum_bits_.compare_exchange_weak(cur, next, std::memory_order_relaxed))
      return;
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

double Histogram::sum() const {
  const std::uint64_t b = sum_bits_.load(std::memory_order_relaxed);
  double s;
  std::memcpy(&s, &b, sizeof(s));
  return s;
}

std::vector<double> Histogram::default_ms_bounds() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,
          10.0, 25.0,  50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

template <typename Map, typename Make>
auto* find_or_make(Map& map, std::string_view name, const Make& make) {
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), make()).first;
  return it->second.get();
}

/// A name may live in exactly one of the three kind maps.
template <typename MapA, typename MapB>
void check_kind_free(const MapA& a, const MapB& b, std::string_view name,
                     const char* kind) {
  TAP_CHECK(a.find(name) == a.end() && b.find(name) == b.end())
      << "metric '" << std::string(name) << "' already registered as a "
      << "different kind (requested " << kind << ")";
}

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Prometheus metric name: "tap_" prefix, every non-alphanumeric
/// character (the hierarchical '.', '-', ...) replaced by '_'.
std::string prom_name(const std::string& name) {
  std::string out = "tap_";
  out.reserve(out.size() + name.size());
  for (char c : name)
    out.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  return out;
}

/// A registered name split at the label bar: "a.b|k=v,k2=v2" ->
/// {base: "tap_a_b", labels: {"k=\"v\"", "k2=\"v2\""}} — the base is
/// sanitized like any name, label keys are sanitized (alnum + '_'),
/// label values are emitted verbatim inside quotes with '"' and '\\'
/// escaped.
struct PromParts {
  std::string base;
  std::vector<std::string> labels;  ///< rendered `key="value"` pairs
};

PromParts prom_parts(const std::string& name) {
  PromParts out;
  const std::size_t bar = name.find('|');
  out.base = prom_name(name.substr(0, bar));
  if (bar == std::string::npos) return out;
  std::string_view rest = std::string_view(name).substr(bar + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    std::string rendered;
    for (char c : pair.substr(0, eq))
      rendered.push_back(
          std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
    rendered += "=\"";
    if (eq != std::string_view::npos) {
      for (char c : pair.substr(eq + 1)) {
        if (c == '"' || c == '\\') rendered.push_back('\\');
        rendered.push_back(c);
      }
    }
    rendered += "\"";
    out.labels.push_back(std::move(rendered));
  }
  return out;
}

/// "{k=\"v\",...}" — with `extra` appended last (the histogram `le`
/// slot); "" when there is nothing to brace.
std::string label_block(const std::vector<std::string>& labels,
                        const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  for (const std::string& l : labels) {
    if (out.size() > 1) out += ",";
    out += l;
  }
  if (!extra.empty()) {
    if (out.size() > 1) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind_free(gauges_, histograms_, name, "counter");
  return find_or_make(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind_free(counters_, histograms_, name, "gauge");
  return find_or_make(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind_free(counters_, gauges_, name, "histogram");
  return find_or_make(histograms_, name, [&] {
    return std::make_unique<Histogram>(std::move(bounds));
  });
}

std::string MetricsRegistry::dump_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << json_number(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << json_number(h->sum()) << ",\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":";
      if (i < h->bounds().size())
        os << json_number(h->bounds()[i]);
      else
        os << "\"inf\"";
      os << ",\"count\":" << h->bucket_count(i) << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::dump_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  // Labeled variants of one family ("a|route=x", "a|route=y") sort right
  // after their base in each map, so emitting `# TYPE` only when the
  // sanitized base changes yields one TYPE line per family.
  std::string last_base;
  for (const auto& [name, c] : counters_) {
    const PromParts p = prom_parts(name);
    if (p.base != last_base) {
      os << "# TYPE " << p.base << " counter\n";
      last_base = p.base;
    }
    os << p.base << label_block(p.labels) << " " << c->value() << "\n";
  }
  last_base.clear();
  for (const auto& [name, g] : gauges_) {
    const PromParts p = prom_parts(name);
    if (p.base != last_base) {
      os << "# TYPE " << p.base << " gauge\n";
      last_base = p.base;
    }
    os << p.base << label_block(p.labels) << " " << json_number(g->value())
       << "\n";
  }
  last_base.clear();
  for (const auto& [name, h] : histograms_) {
    const PromParts p = prom_parts(name);
    if (p.base != last_base) {
      os << "# TYPE " << p.base << " histogram\n";
      last_base = p.base;
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      cum += h->bucket_count(i);
      std::string le = "le=\"";
      if (i < h->bounds().size())
        le += json_number(h->bounds()[i]);
      else
        le += "+Inf";
      le += "\"";
      os << p.base << "_bucket" << label_block(p.labels, le) << " " << cum
         << "\n";
    }
    os << p.base << "_sum" << label_block(p.labels) << " "
       << json_number(h->sum()) << "\n"
       << p.base << "_count" << label_block(p.labels) << " " << h->count()
       << "\n";
  }
  return os.str();
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;  // map iteration order is already sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

std::string dump_json() { return registry().dump_json(); }

std::string dump_prometheus() { return registry().dump_prometheus(); }

double histogram_quantile(const Histogram& h, double q) {
  const std::uint64_t n = h.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  const auto& bounds = h.bounds();
  if (bounds.empty()) return 0.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double in_bucket = static_cast<double>(h.bucket_count(i));
    if (cum + in_bucket >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      if (in_bucket <= 0.0) return lo;
      return lo + (hi - lo) *
                      std::clamp((target - cum) / in_bucket, 0.0, 1.0);
    }
    cum += in_bucket;
  }
  // The q-th observation sits in the +inf overflow bucket: clamp to the
  // largest finite bound (the Prometheus convention).
  return bounds.back();
}

}  // namespace tap::obs
