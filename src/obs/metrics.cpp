#include "obs/metrics.h"

#include <cstring>
#include <sstream>

#include "util/check.h"

namespace tap::obs {

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

std::uint64_t Gauge::to_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    TAP_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  // Linear scan: bucket lists are short (a dozen decade steps) and the
  // scan touches no shared state until the single fetch_add.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double s;
    std::memcpy(&s, &cur, sizeof(s));
    s += v;
    std::uint64_t next;
    std::memcpy(&next, &s, sizeof(next));
    if (sum_bits_.compare_exchange_weak(cur, next, std::memory_order_relaxed))
      return;
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

double Histogram::sum() const {
  const std::uint64_t b = sum_bits_.load(std::memory_order_relaxed);
  double s;
  std::memcpy(&s, &b, sizeof(s));
  return s;
}

std::vector<double> Histogram::default_ms_bounds() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,
          10.0, 25.0,  50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

template <typename Map, typename Make>
auto* find_or_make(Map& map, std::string_view name, const Make& make) {
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), make()).first;
  return it->second.get();
}

/// A name may live in exactly one of the three kind maps.
template <typename MapA, typename MapB>
void check_kind_free(const MapA& a, const MapB& b, std::string_view name,
                     const char* kind) {
  TAP_CHECK(a.find(name) == a.end() && b.find(name) == b.end())
      << "metric '" << std::string(name) << "' already registered as a "
      << "different kind (requested " << kind << ")";
}

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind_free(gauges_, histograms_, name, "counter");
  return find_or_make(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind_free(counters_, histograms_, name, "gauge");
  return find_or_make(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind_free(counters_, gauges_, name, "histogram");
  return find_or_make(histograms_, name, [&] {
    return std::make_unique<Histogram>(std::move(bounds));
  });
}

std::string MetricsRegistry::dump_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << json_number(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << json_number(h->sum()) << ",\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":";
      if (i < h->bounds().size())
        os << json_number(h->bounds()[i]);
      else
        os << "\"inf\"";
      os << ",\"count\":" << h->bucket_count(i) << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

std::string dump_json() { return registry().dump_json(); }

}  // namespace tap::obs
