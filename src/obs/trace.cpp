#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <sstream>

#include "util/check.h"

namespace tap::obs {

namespace {

std::atomic<TraceSession*> g_active{nullptr};
std::atomic<std::uint64_t> g_epoch{0};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceSession* active_session() {
  return g_active.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// chrome_trace_json — the one writer of the shared schema
// ---------------------------------------------------------------------------

std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::map<int, std::string>& process_names) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, pname] : process_names) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(pname) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"ph\":\"";
    switch (e.phase) {
      case TraceEvent::Phase::kComplete:
        os << "X";
        break;
      case TraceEvent::Phase::kInstant:
        os << "i\",\"s\":\"t";
        break;
      case TraceEvent::Phase::kAsyncBegin:
        os << "b\",\"id\":\"" << e.id;
        break;
      case TraceEvent::Phase::kAsyncEnd:
        os << "e\",\"id\":\"" << e.id;
        break;
    }
    os << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<long long>(e.start_us);
    if (e.phase == TraceEvent::Phase::kComplete)
      os << ",\"dur\":" << static_cast<long long>(e.dur_us);
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : e.args) {
        if (!afirst) os << ",";
        afirst = false;
        os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

namespace {

// Per-thread buffer cache: valid while (session, epoch) matches, so a new
// session at a reused address can never alias a stale buffer.
thread_local const TraceSession* t_session = nullptr;
thread_local std::uint64_t t_epoch = 0;
thread_local void* t_buffer = nullptr;

}  // namespace

TraceSession::~TraceSession() { stop(); }

void TraceSession::start() {
  TAP_CHECK(g_active.load(std::memory_order_relaxed) == nullptr)
      << "another TraceSession is already active";
  t0_us_ = steady_now_us();
  epoch_ = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  // The release store publishes t0/epoch to threads that observe the
  // session through active_session()'s acquire load.
  g_active.store(this, std::memory_order_release);
}

void TraceSession::stop() {
  TraceSession* self = this;
  g_active.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

bool TraceSession::active() const {
  return g_active.load(std::memory_order_relaxed) == this;
}

double TraceSession::now_us() const { return steady_now_us() - t0_us_; }

TraceSession::ThreadBuffer& TraceSession::local_buffer() {
  if (t_session == this && t_epoch == epoch_)
    return *static_cast<ThreadBuffer*>(t_buffer);
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buf = *buffers_.back();
  buf.tid = static_cast<std::int64_t>(buffers_.size()) - 1;
  t_session = this;
  t_epoch = epoch_;
  t_buffer = &buf;
  return buf;
}

void TraceSession::append(TraceEvent e) {
  ThreadBuffer& buf = local_buffer();
  e.tid = buf.tid;
  buf.events.push_back(std::move(e));
}

void TraceSession::add_complete(std::string name, std::string category,
                                double start_us, double dur_us, int pid,
                                std::int64_t tid,
                                std::map<std::string, std::string> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = TraceEvent::Phase::kComplete;
  e.start_us = start_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  foreign_.push_back(std::move(e));
}

void TraceSession::instant(std::string name, std::string category,
                           std::map<std::string, std::string> args) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = TraceEvent::Phase::kInstant;
  e.start_us = now_us();
  e.args = std::move(args);
  append(std::move(e));
}

void TraceSession::async_begin(std::string name, std::string category,
                               std::uint64_t id,
                               std::map<std::string, std::string> args) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = TraceEvent::Phase::kAsyncBegin;
  e.start_us = now_us();
  e.id = id;
  e.args = std::move(args);
  append(std::move(e));
}

void TraceSession::async_end(std::string name, std::string category,
                             std::uint64_t id) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = TraceEvent::Phase::kAsyncEnd;
  e.start_us = now_us();
  e.id = id;
  append(std::move(e));
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  std::size_t n = foreign_.size();
  for (const auto& buf : buffers_) n += buf->events.size();
  out.reserve(n);
  for (const auto& buf : buffers_)
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  out.insert(out.end(), foreign_.begin(), foreign_.end());
  return out;
}

std::string TraceSession::to_chrome_json() const {
  return chrome_trace_json(events(),
                           {{0, "planner"}, {1, "simulated step"}});
}

std::size_t TraceSession::thread_buffer_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : session_(active_session()) {
  if (session_ == nullptr) return;  // the measured disabled path
  name_ = name;
  category_ = category;
  start_us_ = session_->now_us();
}

ScopedSpan::ScopedSpan(const std::string& name, const char* category)
    : session_(active_session()) {
  if (session_ == nullptr) return;
  name_ = name;
  category_ = category;
  start_us_ = session_->now_us();
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (session_ == nullptr) return;
  args_[std::move(key)] = std::move(value);
}

ScopedSpan::~ScopedSpan() {
  if (session_ == nullptr) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = category_;
  e.phase = TraceEvent::Phase::kComplete;
  e.start_us = start_us_;
  e.dur_us = session_->now_us() - start_us_;
  e.args = std::move(args_);
  session_->append(std::move(e));
}

}  // namespace tap::obs
