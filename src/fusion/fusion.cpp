#include "fusion/fusion.h"

namespace tap::fusion {

bool is_fusable(OpKind kind) {
  switch (kind) {
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
    case OpKind::kBiasAdd:
    case OpKind::kSoftmax:
      return true;
    default:
      return is_elementwise(kind);
  }
}

FusionResult fuse_elementwise(const Graph& g) {
  FusionResult result;
  std::vector<bool> used(g.num_nodes(), false);
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!is_fusable(n.kind)) continue;
    ++result.fusable_ops;
    if (used[static_cast<std::size_t>(id)]) continue;
    // Grow a chain downstream while the sole consumer is elementwise.
    std::vector<NodeId> chain = {id};
    used[static_cast<std::size_t>(id)] = true;
    NodeId cur = id;
    while (true) {
      const auto& cons = g.consumers(cur);
      if (cons.size() != 1) break;
      const Node& next = g.node(cons.front());
      if (!is_fusable(next.kind) ||
          used[static_cast<std::size_t>(next.id)]) {
        break;
      }
      // Only fuse when the chain is the consumer's sole data dependency
      // path (unary elementwise); binary ops join other streams.
      if (next.inputs.size() != 1) break;
      chain.push_back(next.id);
      used[static_cast<std::size_t>(next.id)] = true;
      cur = next.id;
    }
    if (chain.size() >= 2) {
      result.kernels_saved += chain.size() - 1;
      result.groups.push_back(std::move(chain));
    }
  }
  return result;
}

}  // namespace tap::fusion
