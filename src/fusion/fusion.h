// XLA-like JIT kernel fusion pass (§6.2.2, Fig. 8).
//
// Greedily clusters chains of elementwise operators: a fused cluster
// launches as one kernel (saving per-kernel launch overhead) but also
// behaves as one scheduling unit, which hinders overlapping collectives
// with the computation inside it. The simulator consumes both effects via
// SimOptions::xla_fusion; this pass provides the structural analysis (how
// many kernels fusion saves) reported by the Fig. 8 bench.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tap::fusion {

struct FusionResult {
  /// Fused groups (each a chain of >= 2 elementwise ops, topo order).
  std::vector<std::vector<NodeId>> groups;
  std::size_t fusable_ops = 0;
  /// Kernel launches eliminated: Σ (group size - 1).
  std::size_t kernels_saved = 0;
};

/// Ops XLA can fold into a neighbouring kernel: elementwise math plus the
/// light normalization/bias/softmax ops it fuses in practice.
bool is_fusable(OpKind kind);

/// Clusters maximal single-consumer chains of fusable ops. Never fuses
/// across communication or auxiliary operators.
FusionResult fuse_elementwise(const Graph& g);

}  // namespace tap::fusion
