#include "sharding/shard_spec.h"

namespace tap::sharding {

std::string_view collective_name(Collective c) {
  switch (c) {
    case Collective::kNone: return "None";
    case Collective::kAllReduce: return "AllReduce";
    case Collective::kAllGather: return "AllGather";
    case Collective::kReduceScatter: return "ReduceScatter";
    case Collective::kAllToAll: return "AllToAll";
    case Collective::kBroadcast: return "Broadcast";
  }
  return "?";
}

}  // namespace tap::sharding
