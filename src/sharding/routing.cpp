#include "sharding/routing.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace tap::sharding {

namespace {

using ir::GraphNode;
using ir::GraphNodeId;
using ir::TapGraph;

struct Router {
  const TapGraph& tg;
  const ShardingPlan& plan;
  const std::vector<GraphNodeId>* members;  // nullptr = all
  ShardSpec boundary;
  const PatternTable* table;  // optional precomputed patterns
  // Working state lives in caller-owned buffers so repeated candidate
  // routes reuse capacity instead of reallocating (RoutingScratch docs).
  // scratch.igrad_emitted: producers whose partial input-gradient
  // AllReduce is already emitted — several column-split consumers of one
  // tensor (Megatron's fused QKV) sum their partials into ONE AllReduce,
  // not one each. scratch.materialized: layouts already materialized per
  // producer — once one consumer paid the AllGather from S(0) to R, every
  // other consumer reads the gathered copy for free (NCCL buffers are
  // reusable within a step).
  RoutingScratch& scratch;
  RoutedPlan& out;

  bool fail(const GraphNode& n, const std::string& why) {
    std::ostringstream os;
    os << "invalid at '" << n.name << "': " << why;
    out.error = os.str();
    out.valid = false;
    return false;
  }

  void emit(Collective kind, std::int64_t bytes, int count,
            CommEvent::Phase phase, bool overlappable, GraphNodeId node,
            std::string reason,
            GraphNodeId src = ir::kInvalidGraphNode, int group = 0,
            bool cross_node = false) {
    if (kind == Collective::kNone || bytes <= 0) return;
    if (group == 0) group = plan.num_shards;
    if (group <= 1) return;  // degenerate group: no wire traffic
    CommEvent e;
    e.kind = kind;
    e.bytes = bytes;
    e.count = count;
    e.phase = phase;
    e.overlappable = overlappable;
    e.node = node;
    e.src = src;
    e.group = group;
    e.cross_node = cross_node;
    e.reason = std::move(reason);
    out.comms.push_back(std::move(e));
  }

  /// Per-replica bytes of an activation tensor: the batch is pre-split
  /// across the dp replicas.
  std::int64_t act_bytes(std::int64_t full) const {
    return full / std::max(1, plan.dp_replicas);
  }

  /// Converts the layout flowing along an edge to `want`. Returns false on
  /// an impossible conversion (indivisible target axis).
  bool convert(const GraphNode& consumer, const TensorSpec& tensor,
               const ShardSpec& have, const ShardSpec& want,
               GraphNodeId producer = ir::kInvalidGraphNode) {
    int rank = tensor.shape.rank();
    if (have.same_layout(want, rank)) return true;
    if (want.is_split() && !want.fits(tensor.shape, plan.num_shards)) {
      return fail(consumer, "cannot re-shard " + tensor.shape.to_string() +
                                " to " + want.to_string());
    }
    if (have.is_replicate()) {
      // replicate -> split: local slice, free.
      return true;
    }
    // Record the edge even when the collective below is deduplicated —
    // the rewriter must wire EVERY consumer through the conversion node.
    if (producer != ir::kInvalidGraphNode) {
      out.edge_conversions.push_back({producer, consumer.id, have, want});
    }
    if (producer != ir::kInvalidGraphNode) {
      if (scratch.materialized.size() < tg.num_nodes())
        scratch.materialized.resize(tg.num_nodes());
      auto& layouts =
          scratch.materialized[static_cast<std::size_t>(producer)];
      for (const ShardSpec& ready : layouts) {
        if (ready.same_layout(want, rank)) return true;  // already paid
      }
      if (layouts.empty()) scratch.materialized_touched.push_back(producer);
      layouts.push_back(want);
    }
    const std::size_t before = out.comms.size();
    if (want.is_replicate()) {
      emit(Collective::kAllGather, act_bytes(tensor.size_bytes()), 1,
           CommEvent::Phase::kForward, false, consumer.id,
           "reshard " + have.to_string() + "->R", producer);
      if (out.comms.size() > before) {
        out.comms.back().from_spec = have;
        out.comms.back().to_spec = want;
      }
      emit(Collective::kReduceScatter, act_bytes(tensor.size_bytes()), 1,
           CommEvent::Phase::kBackward, false, consumer.id,
           "grad of reshard " + have.to_string() + "->R", producer);
      return true;
    }
    // split(a) -> split(b)
    emit(Collective::kAllToAll, act_bytes(tensor.size_bytes()), 1,
         CommEvent::Phase::kForward, false, consumer.id,
         "reshard " + have.to_string() + "->" + want.to_string(), producer);
    if (out.comms.size() > before) {
      out.comms.back().from_spec = have;
      out.comms.back().to_spec = want;
    }
    emit(Collective::kAllToAll, act_bytes(tensor.size_bytes()), 1,
         CommEvent::Phase::kBackward, false, consumer.id,
         "grad of reshard " + have.to_string() + "->" + want.to_string(),
         producer);
    return true;
  }

  bool run() {
    const int parts = plan.num_shards;
    out.valid = false;
    out.error.clear();
    out.num_shards = plan.num_shards;
    out.dp_replicas = plan.dp_replicas;
    out.comms.clear();
    out.edge_conversions.clear();
    out.output_spec.assign(tg.num_nodes(), boundary);
    out.pattern_index.assign(tg.num_nodes(), 0);
    TAP_CHECK_EQ(plan.choice.size(), tg.num_nodes());

    // Reset reused scratch in O(entries the previous route touched).
    for (GraphNodeId id : scratch.igrad_touched)
      scratch.igrad_emitted[static_cast<std::size_t>(id)] = 0;
    scratch.igrad_touched.clear();
    for (GraphNodeId id : scratch.materialized_touched)
      scratch.materialized[static_cast<std::size_t>(id)].clear();
    scratch.materialized_touched.clear();

    // Visit order: the whole graph topologically, or just the subgraph
    // members sorted by cached topological position — candidate
    // evaluation must cost O(members), not O(V) (Table 2).
    if (members != nullptr) {
      scratch.sorted_members.assign(members->begin(), members->end());
      std::sort(scratch.sorted_members.begin(), scratch.sorted_members.end(),
                [&](GraphNodeId a, GraphNodeId b) {
                  return tg.topo_position(a) < tg.topo_position(b);
                });
    }
    const std::vector<GraphNodeId>& scope =
        members == nullptr ? tg.cached_topo_order() : scratch.sorted_members;

    // Algorithm 3 walks the DAG from roots to leaves; a topological order
    // visits each node exactly once with all producers resolved.
    for (GraphNodeId id : scope) {
      const GraphNode& n = tg.node(id);
      const std::vector<ShardingPattern>& pats =
          table != nullptr ? table->at(id) : scratch.patterns =
                                                 patterns_for(tg, id, parts);
      int c = plan.choice[static_cast<std::size_t>(id)];
      if (c < 0 || c >= static_cast<int>(pats.size())) {
        return fail(n, "no sharding pattern with index " +
                           std::to_string(c));
      }
      const ShardingPattern& pat = pats[static_cast<std::size_t>(c)];
      out.pattern_index[static_cast<std::size_t>(id)] = c;

      // Incoming layout from the primary producer (roots see replicated
      // feeds).
      ShardSpec incoming = ShardSpec::replicate();
      const TensorSpec* in_tensor = nullptr;
      if (!n.inputs.empty()) {
        GraphNodeId p = n.inputs.front();
        incoming = out.output_spec[static_cast<std::size_t>(p)];
        in_tensor = &tg.node(p).output;
      }

      // Effective input layout after honoring the pattern's requirement.
      ShardSpec effective = incoming;
      if (pat.input.has_value() && in_tensor != nullptr) {
        if (!convert(n, *in_tensor, incoming, *pat.input, n.inputs.front()))
          return false;
        effective = *pat.input;
      }
      // Ops that reduce over the last axis cannot consume a last-axis
      // split; gather it back.
      if (!pat.input.has_value() && in_tensor != nullptr &&
          effective.is_split() &&
          rejects_last_axis_split(n.primary_kind) &&
          effective.resolved_axis(in_tensor->shape.rank()) ==
              in_tensor->shape.rank() - 1) {
        if (!convert(n, *in_tensor, effective, ShardSpec::replicate(),
                     n.inputs.front()))
          return false;
        effective = ShardSpec::replicate();
      }
      // Secondary inputs must arrive in the same layout (residual adds,
      // attention memories); convert them.
      for (std::size_t i = 1; i < n.inputs.size(); ++i) {
        GraphNodeId p = n.inputs[i];
        const TensorSpec& t = tg.node(p).output;
        ShardSpec have = out.output_spec[static_cast<std::size_t>(p)];
        // Only meaningful when shapes are compatible; smaller side tensors
        // (labels, router probs) just need *a* consistent layout — treat
        // mismatched ranks as replicated requirements.
        ShardSpec want = effective;
        if (t.shape.rank() != (in_tensor ? in_tensor->shape.rank() : 0))
          want = ShardSpec::replicate();
        if (!convert(n, t, have, want, p)) return false;
      }

      // Output layout.
      ShardSpec produced = pat.output.has_value() ? *pat.output : effective;
      if (produced.is_split()) {
        if (n.output.shape.rank() == 0) {
          produced = ShardSpec::replicate();  // scalar losses collapse
        } else if (!produced.fits(n.output.shape, parts)) {
          return fail(n, "output " + n.output.shape.to_string() +
                             " not divisible under " + produced.to_string());
        }
      }
      out.output_spec[static_cast<std::size_t>(id)] = produced;

      // Pattern collectives.
      if (pat.forward_comm != Collective::kNone) {
        emit(pat.forward_comm, act_bytes(n.output.size_bytes()),
             pat.forward_comm_count, CommEvent::Phase::kForward, false, id,
             "pattern:" + pat.name);
        if (pat.forward_comm == Collective::kAllToAll) {
          // Expert dispatch/combine repeats on the gradient path.
          emit(pat.forward_comm, act_bytes(n.output.size_bytes()),
               pat.forward_comm_count, CommEvent::Phase::kBackward, false,
               id, "grad:" + pat.name);
        }
      }
      if (n.has_weight()) {
        const Graph& g = *tg.source();
        const int dp = std::max(1, plan.dp_replicas);
        // A replicated weight needs its gradients synchronized across
        // every device that saw *different data*: always the dp replicas,
        // plus the tp group whenever the activation stream is split within
        // it (batch-split dp pattern or any sharded layout flowing
        // through). A weight computed from fully replicated data yields
        // identical gradients — no communication.
        const bool data_diverges_in_tp =
            pat.name == "dp" || effective.is_split() ||
            (pat.output.has_value() && pat.output->is_split());
        const int replicated_group =
            data_diverges_in_tp ? dp * plan.num_shards : dp;
        if (pat.replicates_weight()) {
          // Every weight in the cluster stays replicated: one gradient
          // AllReduce over all of them; overlappable with backward compute
          // and foldable by gradient packing (§4.6).
          std::int64_t wbytes = 0;
          for (NodeId wid : n.weight_ops) {
            const Node& w = g.node(wid);
            if (w.trainable) wbytes += w.weight->size_bytes();
          }
          emit(Collective::kAllReduce, wbytes, 1, CommEvent::Phase::kBackward,
               true, id, "wgrad:" + pat.name, ir::kInvalidGraphNode,
               replicated_group, /*cross_node=*/dp > 1);
        } else {
          // Primary weight is split (its gradients stay local); secondary
          // weights (norm gains, biases inside the cluster) remain
          // replicated and still need their gradient AllReduce.
          const Node* primary = nullptr;
          for (NodeId wid : n.weight_ops) {
            const Node& w = g.node(wid);
            if (!primary || w.weight_params() > primary->weight_params())
              primary = &w;
          }
          std::int64_t wbytes = 0;
          std::int64_t primary_bytes = 0;
          for (NodeId wid : n.weight_ops) {
            const Node& w = g.node(wid);
            if (&w == primary) {
              if (w.trainable) primary_bytes = w.weight->size_bytes();
            } else if (w.trainable) {
              wbytes += w.weight->size_bytes();
            }
          }
          emit(Collective::kAllReduce, wbytes, 1,
               CommEvent::Phase::kBackward, true, id, "wgrad:secondary",
               ir::kInvalidGraphNode, replicated_group,
               /*cross_node=*/dp > 1);
          if (dp > 1 && primary_bytes > 0) {
            // The tp-sharded primary weight still synchronizes its local
            // shard across the dp replicas.
            emit(Collective::kAllReduce, primary_bytes / plan.num_shards, 1,
                 CommEvent::Phase::kBackward, true, id,
                 "wgrad:dp-shard:" + pat.name, ir::kInvalidGraphNode, dp,
                 /*cross_node=*/true);
          }
        }
        if (pat.backward_subject == BwdSubject::kInputGrad &&
            pat.backward_comm != Collective::kNone && in_tensor != nullptr) {
          // Partial input gradients block the backward chain. One
          // AllReduce per producer tensor, shared by all split consumers.
          const std::size_t p =
              static_cast<std::size_t>(n.inputs.front());
          if (scratch.igrad_emitted.size() < tg.num_nodes())
            scratch.igrad_emitted.resize(tg.num_nodes(), 0);
          if (!scratch.igrad_emitted[p]) {
            scratch.igrad_emitted[p] = 1;
            scratch.igrad_touched.push_back(n.inputs.front());
            emit(pat.backward_comm, act_bytes(in_tensor->size_bytes()), 1,
                 CommEvent::Phase::kBackward, false, id,
                 "igrad:" + pat.name, n.inputs.front());
          }
        }
      }
    }
    out.valid = true;
    return true;
  }
};

}  // namespace

std::int64_t RoutedPlan::total_comm_bytes() const {
  std::int64_t b = 0;
  for (const auto& e : comms) b += e.bytes * e.count;
  return b;
}

std::int64_t RoutedPlan::forward_comm_bytes() const {
  std::int64_t b = 0;
  for (const auto& e : comms)
    if (e.phase == CommEvent::Phase::kForward) b += e.bytes * e.count;
  return b;
}

std::int64_t RoutedPlan::backward_comm_bytes() const {
  std::int64_t b = 0;
  for (const auto& e : comms)
    if (e.phase == CommEvent::Phase::kBackward) b += e.bytes * e.count;
  return b;
}

std::int64_t RoutedPlan::overlappable_comm_bytes() const {
  std::int64_t b = 0;
  for (const auto& e : comms)
    if (e.overlappable) b += e.bytes * e.count;
  return b;
}

RoutedPlan route_plan(const ir::TapGraph& tg, const ShardingPlan& plan,
                      const PatternTable* table) {
  RoutedPlan out;
  RoutingScratch scratch;
  route_plan_into(tg, plan, table, &scratch, &out);
  return out;
}

RoutedPlan route_subgraph(const ir::TapGraph& tg, const ShardingPlan& plan,
                          const std::vector<ir::GraphNodeId>& members,
                          const ShardSpec& boundary,
                          const PatternTable* table) {
  RoutedPlan out;
  RoutingScratch scratch;
  route_subgraph_into(tg, plan, members, boundary, table, &scratch, &out);
  return out;
}

void route_subgraph_into(const ir::TapGraph& tg, const ShardingPlan& plan,
                         const std::vector<ir::GraphNodeId>& members,
                         const ShardSpec& boundary, const PatternTable* table,
                         RoutingScratch* scratch, RoutedPlan* out) {
  TAP_CHECK(scratch != nullptr && out != nullptr);
  Router r{tg, plan, &members, boundary, table, *scratch, *out};
  r.run();
}

void route_plan_into(const ir::TapGraph& tg, const ShardingPlan& plan,
                     const PatternTable* table, RoutingScratch* scratch,
                     RoutedPlan* out) {
  TAP_CHECK(scratch != nullptr && out != nullptr);
  Router r{tg, plan, nullptr, ShardSpec::replicate(), table, *scratch, *out};
  r.run();
}

ShardSpec subgraph_exit_spec(const ir::TapGraph& tg, const RoutedPlan& routed,
                             const std::vector<ir::GraphNodeId>& members) {
  if (members.empty()) return ShardSpec::replicate();
  // O(members): find the member with the highest topo position that feeds
  // a consumer outside the set (membership tested via sorted ids).
  std::vector<GraphNodeId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  auto in_set = [&](GraphNodeId id) {
    return std::binary_search(sorted.begin(), sorted.end(), id);
  };
  GraphNodeId exit = ir::kInvalidGraphNode;
  int best_pos = -1;
  for (GraphNodeId id : members) {
    bool external = tg.consumers(id).empty();
    for (GraphNodeId c : tg.consumers(id)) external |= !in_set(c);
    if (external && tg.topo_position(id) > best_pos) {
      best_pos = tg.topo_position(id);
      exit = id;
    }
  }
  if (exit == ir::kInvalidGraphNode) exit = members.back();
  return routed.output_spec[static_cast<std::size_t>(exit)];
}

}  // namespace tap::sharding
