#include "sharding/enumerate.h"

#include "util/check.h"

namespace tap::sharding {

FamilyPlanEnumerator::FamilyPlanEnumerator(
    const ir::TapGraph& tg, const pruning::SubgraphFamily& family,
    int num_shards) {
  counts_.reserve(family.member_nodes.size());
  for (ir::GraphNodeId id : family.member_nodes) {
    counts_.push_back(
        static_cast<int>(patterns_for(tg, id, num_shards).size()));
    TAP_CHECK_GE(counts_.back(), 1);
  }
  current_.assign(counts_.size(), 0);
}

std::int64_t FamilyPlanEnumerator::total_plans() const {
  std::int64_t total = 1;
  for (int c : counts_) total *= c;
  return total;
}

bool FamilyPlanEnumerator::next(std::vector<int>* member_choice) {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    *member_choice = current_;
    return true;
  }
  // Mixed-radix increment.
  std::size_t i = 0;
  for (; i < counts_.size(); ++i) {
    if (++current_[i] < counts_[i]) break;
    current_[i] = 0;
  }
  if (i == counts_.size()) {
    exhausted_ = true;
    return false;
  }
  *member_choice = current_;
  return true;
}

void FamilyPlanEnumerator::reset() {
  current_.assign(counts_.size(), 0);
  exhausted_ = false;
  started_ = false;
}

}  // namespace tap::sharding
