// ShardingPlan: a complete pattern assignment for a TapGraph (§4.2:
// "a set of subgraphs with sharding patterns connecting them").
//
// The plan stores one pattern index per GraphNode, indexing into
// patterns_for(node). Glue nodes always use index 0 (the follow pattern).
// Plans are produced per subgraph family by the enumerator and replayed
// onto every instance with apply_family_choice — that replay is what makes
// the search cost independent of model depth.
#pragma once

#include <string>
#include <vector>

#include "pruning/prune.h"
#include "sharding/pattern.h"

namespace tap::sharding {

struct ShardingPlan {
  /// Tensor-parallel group size (the mesh's inner dimension).
  int num_shards = 1;
  /// Data-parallel replicas around the tp group (mesh outer dimension).
  int dp_replicas = 1;
  /// Pattern index per GraphNodeId.
  std::vector<int> choice;

  MeshSpec mesh() const { return {dp_replicas, num_shards}; }
  int world() const { return num_shards * dp_replicas; }
  bool empty() const { return choice.empty(); }
};

/// Plan with every node at pattern 0 — data parallelism wherever the batch
/// divides, otherwise replication (the universal fallback).
ShardingPlan default_plan(const ir::TapGraph& tg, int num_shards,
                          int dp_replicas = 1);

/// Replays `member_choice` (aligned with family.member_nodes) onto every
/// instance of the family.
void apply_family_choice(const pruning::SubgraphFamily& family,
                         const std::vector<int>& member_choice,
                         ShardingPlan* plan);

/// Human-readable summary: pattern name per weighted GraphNode.
std::string describe_plan(const ir::TapGraph& tg, const ShardingPlan& plan,
                          std::size_t max_nodes = 64);

/// Number of candidate plans a family contributes (product of its weighted
/// members' applicable-pattern counts).
std::int64_t family_plan_count(const ir::TapGraph& tg,
                               const pruning::SubgraphFamily& family,
                               int num_shards);

}  // namespace tap::sharding
