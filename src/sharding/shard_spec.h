// The Split-Replica-Communication (SRC) abstraction (§3.4).
//
// A ShardSpec describes how one logical tensor is laid out across the
// device group: fully replicated, or split along one axis. Data parallelism
// is the special case Split(0) on the batch axis of activations with
// replicated weights. Communication is not part of the spec itself — it is
// derived (the "C" of SRC) whenever an operator's required input spec or
// produced output spec does not match what flows along an edge.
#pragma once

#include <cstdint>
#include <string>

#include "graph/tensor_shape.h"

namespace tap::sharding {

struct ShardSpec {
  enum class Kind : std::uint8_t { kReplicate, kSplit };

  Kind kind = Kind::kReplicate;
  /// Split axis; negative axes count from the end (-1 = last dim).
  int axis = 0;

  static ShardSpec replicate() { return {Kind::kReplicate, 0}; }
  static ShardSpec split(int axis) { return {Kind::kSplit, axis}; }

  bool is_split() const { return kind == Kind::kSplit; }
  bool is_replicate() const { return kind == Kind::kReplicate; }

  /// Resolves a negative axis against `rank` (-1 -> rank-1). Replicate
  /// specs return -1.
  int resolved_axis(int rank) const {
    if (!is_split()) return -1;
    return axis < 0 ? axis + rank : axis;
  }

  /// True when two specs describe the same layout for a tensor of `rank`.
  bool same_layout(const ShardSpec& other, int rank) const {
    if (kind != other.kind) return false;
    if (!is_split()) return true;
    return resolved_axis(rank) == other.resolved_axis(rank);
  }

  /// True if a tensor with `shape` can be laid out this way over `parts`
  /// devices (split axis exists and divides evenly).
  bool fits(const TensorShape& shape, int parts) const {
    if (!is_split()) return true;
    return shape.divisible(axis, parts);
  }

  /// Per-device shape under this spec.
  TensorShape local_shape(const TensorShape& shape, int parts) const {
    if (!is_split()) return shape;
    return shape.sharded(axis, parts);
  }

  std::string to_string() const {
    if (!is_split()) return "R";
    return "S(" + std::to_string(axis) + ")";
  }

  friend bool operator==(const ShardSpec& a, const ShardSpec& b) {
    if (a.kind != b.kind) return false;
    return !a.is_split() || a.axis == b.axis;
  }
  friend bool operator!=(const ShardSpec& a, const ShardSpec& b) {
    return !(a == b);
  }
};

/// The logical device mesh of the paper's Example 1 (`mesh = [2, 8]`,
/// `tap.auto_parallel(tap.split(mesh))`): `dp` data-parallel replicas
/// (outer dimension, laid across nodes) × `tp` tensor-parallel devices
/// (inner dimension, packed within a node whenever tp <= GPUs/node).
/// Weights shard across the tp group; the batch splits across the dp
/// group; replicated-weight gradients AllReduce across dp (or the whole
/// world when tp also replicates them). mesh{1, n} reproduces the flat
/// single-group behaviour.
struct MeshSpec {
  int dp = 1;
  int tp = 1;

  int world() const { return dp * tp; }
  static MeshSpec flat(int n) { return {1, n}; }
  std::string to_string() const {
    // Built with += rather than operator+ chains: GCC 12's -Wrestrict
    // fires a false positive (PR105651) on `const char* + std::string&&`
    // when inlined, and CI compiles with -Werror.
    std::string out = "[";
    out += std::to_string(dp);
    out += ", ";
    out += std::to_string(tp);
    out += ']';
    return out;
  }
  friend bool operator==(const MeshSpec& a, const MeshSpec& b) {
    return a.dp == b.dp && a.tp == b.tp;
  }
};

/// Collective communication primitives the rewriter can insert — ordered
/// roughly by NCCL efficiency (§4.6: AllToAll and AllGather move the same
/// bytes slower than the heavily optimized AllReduce).
enum class Collective : std::uint8_t {
  kNone,
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kAllToAll,
  kBroadcast,
};

std::string_view collective_name(Collective c);

}  // namespace tap::sharding
