// Pattern routing (§4.5, Algorithm 3): validate that a candidate plan's
// patterns chain into a connected root→leaf path, resolving every edge's
// tensor layout and inserting re-shard collectives where producer and
// consumer layouts disagree.
//
// Conversions the router may insert on an edge:
//   replicate → split       : free (each device slices locally)
//   split     → replicate   : AllGather  (mirrored by a backward
//                             ReduceScatter on the gradient path)
//   split(a)  → split(b)    : AllToAll   (mirrored by a backward AllToAll)
// A conversion to a split layout is only legal when the tensor axis
// divides evenly across the group; otherwise the plan is INVALID — this is
// the FALSE branch of Algorithm 3.
#pragma once

#include <string>
#include <vector>

#include "sharding/plan.h"

namespace tap::sharding {

/// One collective the routed plan requires.
struct CommEvent {
  enum class Phase : std::uint8_t { kForward, kBackward };

  Collective kind = Collective::kNone;
  /// Full logical bytes of the tensor being communicated (already scaled
  /// to the per-replica activation size when dp > 1).
  std::int64_t bytes = 0;
  int count = 1;
  Phase phase = Phase::kForward;
  /// Devices participating in the collective (tp group for activation
  /// collectives, dp group or the whole world for gradient sync). 0 means
  /// "the plan's tp group" for backward compatibility.
  int group = 0;
  /// True for collectives over the dp dimension, which is laid out across
  /// nodes: the cost model must use inter-node bandwidth even when the
  /// group is small.
  bool cross_node = false;
  /// Weight-gradient AllReduces can overlap with backward compute and be
  /// fused by gradient packing (§4.6/§4.7.1); layout conversions and
  /// partial-sum reductions on the activation path cannot.
  bool overlappable = false;
  ir::GraphNodeId node = ir::kInvalidGraphNode;
  /// For reshard events: the producer cluster of the converted edge.
  ir::GraphNodeId src = ir::kInvalidGraphNode;
  /// For reshard events: the layouts being converted between.
  ShardSpec from_spec = ShardSpec::replicate();
  ShardSpec to_spec = ShardSpec::replicate();
  std::string reason;
};

/// One edge whose tensor must change layout between producer and consumer
/// clusters — recorded for EVERY such edge, including consumers that reuse
/// a conversion another consumer already paid for (the rewriter wires each
/// of them through the shared conversion node).
struct EdgeConversion {
  ir::GraphNodeId src = ir::kInvalidGraphNode;
  ir::GraphNodeId dst = ir::kInvalidGraphNode;
  ShardSpec from = ShardSpec::replicate();
  ShardSpec to = ShardSpec::replicate();
};

struct RoutedPlan {
  bool valid = false;
  std::string error;
  /// The mesh the plan was routed for (copied from the ShardingPlan).
  int num_shards = 1;
  int dp_replicas = 1;
  /// Resolved output layout per GraphNode.
  std::vector<ShardSpec> output_spec;
  /// Resolved pattern per GraphNode (index into patterns_for).
  std::vector<int> pattern_index;
  std::vector<CommEvent> comms;
  /// Layout changes per edge (see EdgeConversion).
  std::vector<EdgeConversion> edge_conversions;

  std::int64_t total_comm_bytes() const;
  std::int64_t forward_comm_bytes() const;
  std::int64_t backward_comm_bytes() const;
  std::int64_t overlappable_comm_bytes() const;
};

/// Reusable working buffers for the router. One route allocates them; a
/// second route through the same scratch reuses the capacity, touching
/// only the entries the previous route dirtied — this is what makes the
/// planner's per-candidate routing allocation-free in steady state
/// (cost::CostArena holds one per search thread). Default-constructed
/// scratch is valid for any graph.
struct RoutingScratch {
  std::vector<ir::GraphNodeId> sorted_members;
  /// Producers whose partial input-gradient AllReduce is already emitted,
  /// indexed by GraphNodeId; `igrad_touched` lists the set entries so the
  /// next route clears them in O(touched), not O(V).
  std::vector<char> igrad_emitted;
  std::vector<ir::GraphNodeId> igrad_touched;
  /// Layouts already materialized per producer (AllGather dedup), with
  /// the same touched-list reset discipline.
  std::vector<std::vector<ShardSpec>> materialized;
  std::vector<ir::GraphNodeId> materialized_touched;
  /// Pattern storage for table-less routing.
  std::vector<ShardingPattern> patterns;
};

/// Routes `plan` over the whole TapGraph. Always returns a RoutedPlan;
/// check `valid` / `error`.
RoutedPlan route_plan(const ir::TapGraph& tg, const ShardingPlan& plan,
                      const PatternTable* table = nullptr);

/// Routes only the GraphNodes in `members` (one pruned-subgraph family
/// instance); tensors entering from outside the subgraph are assumed to
/// arrive in layout `boundary`. This is what makes TAP's candidate
/// evaluation O(E / 2CL) (Table 2): the 729 T5-block candidates each touch
/// one block, not the whole model. For chained blocks, evaluate in steady
/// state: route once with a replicated boundary to learn the exit layout,
/// then score with boundary = exit layout.
RoutedPlan route_subgraph(
    const ir::TapGraph& tg, const ShardingPlan& plan,
    const std::vector<ir::GraphNodeId>& members,
    const ShardSpec& boundary = ShardSpec::replicate(),
    const PatternTable* table = nullptr);

/// route_subgraph into caller-owned buffers: `out`'s vectors and
/// `scratch` are cleared and reused instead of reallocated, so repeated
/// candidate evaluation (FamilySearchContext::stage) allocates nothing
/// once capacities warm up. `out` must not alias a RoutedPlan reachable
/// from `scratch`. Results are identical to route_subgraph.
void route_subgraph_into(const ir::TapGraph& tg, const ShardingPlan& plan,
                         const std::vector<ir::GraphNodeId>& members,
                         const ShardSpec& boundary, const PatternTable* table,
                         RoutingScratch* scratch, RoutedPlan* out);

/// route_plan into caller-owned buffers (same contract as
/// route_subgraph_into).
void route_plan_into(const ir::TapGraph& tg, const ShardingPlan& plan,
                     const PatternTable* table, RoutingScratch* scratch,
                     RoutedPlan* out);

/// Layout a routed subgraph hands to downstream consumers: the output spec
/// of the last member (in topological order) with a consumer outside
/// `members` (or the last member overall).
ShardSpec subgraph_exit_spec(const ir::TapGraph& tg, const RoutedPlan& routed,
                             const std::vector<ir::GraphNodeId>& members);

}  // namespace tap::sharding
