#include "sharding/plan.h"

#include <sstream>

#include "util/check.h"

namespace tap::sharding {

ShardingPlan default_plan(const ir::TapGraph& tg, int num_shards,
                          int dp_replicas) {
  ShardingPlan plan;
  plan.num_shards = num_shards;
  plan.dp_replicas = dp_replicas;
  plan.choice.assign(tg.num_nodes(), 0);
  return plan;
}

void apply_family_choice(const pruning::SubgraphFamily& family,
                         const std::vector<int>& member_choice,
                         ShardingPlan* plan) {
  TAP_CHECK_EQ(member_choice.size(), family.member_nodes.size());
  for (const auto& instance : family.instance_nodes) {
    TAP_CHECK_EQ(instance.size(), member_choice.size());
    for (std::size_t j = 0; j < instance.size(); ++j) {
      std::size_t idx = static_cast<std::size_t>(instance[j]);
      TAP_CHECK_LT(idx, plan->choice.size());
      plan->choice[idx] = member_choice[j];
    }
  }
}

std::string describe_plan(const ir::TapGraph& tg, const ShardingPlan& plan,
                          std::size_t max_nodes) {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& n : tg.nodes()) {
    if (!n.has_weight()) continue;
    if (shown++ >= max_nodes) {
      os << "  ...\n";
      break;
    }
    auto pats = patterns_for(tg, n.id, plan.num_shards, plan.dp_replicas);
    int c = plan.choice[static_cast<std::size_t>(n.id)];
    std::string pat = (c >= 0 && c < static_cast<int>(pats.size()))
                          ? pats[static_cast<std::size_t>(c)].name
                          : "<invalid>";
    os << "  " << n.name << " -> " << pat << "\n";
  }
  return os.str();
}

std::int64_t family_plan_count(const ir::TapGraph& tg,
                               const pruning::SubgraphFamily& family,
                               int num_shards) {
  std::int64_t count = 1;
  for (ir::GraphNodeId id : family.member_nodes) {
    if (!tg.node(id).has_weight()) continue;
    count *= static_cast<std::int64_t>(
        patterns_for(tg, id, num_shards).size());
  }
  return count;
}

}  // namespace tap::sharding
