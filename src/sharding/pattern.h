// ShardingPattern: one legal way to distribute a weighted GraphNode over
// the device group, expressed in the SRC vocabulary (§3.4, §4.4).
//
// A pattern fixes the layout of the node's primary weight tensor, the
// layout it requires of its primary input activation, the layout it
// produces, and the collectives required to keep the math equivalent:
//   * forward_comm  — applied to the op output right after compute (e.g.
//     the AllReduce that sums row-split MatMul partials, Fig. 4);
//   * backward_comm — applied during the backward pass, either to the
//     weight gradients (data parallelism's gradient AllReduce, which can
//     overlap with compute, §4.6) or to the input gradients (the mirror of
//     a column split).
//
// patterns_for() is the registry: given a GraphNode it returns every
// applicable pattern, pre-filtered for divisibility over `num_shards`.
// Replicate-only ops (LayerNorm & friends) return exactly one option, which
// is how a T5 block with 8 weighted clusters still enumerates 3^6 = 729
// plans, matching §6.3.1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/graph_node.h"
#include "sharding/shard_spec.h"

namespace tap::sharding {

/// What the backward collective is applied to.
enum class BwdSubject : std::uint8_t { kNone, kWeightGrad, kInputGrad };

struct ShardingPattern {
  std::string name;
  /// Required layout of the primary input activation; nullopt = follow
  /// (any layout is accepted and propagated).
  std::optional<ShardSpec> input;
  /// Layout of the primary weight tensor (replicate when no weight).
  ShardSpec weight = ShardSpec::replicate();
  /// Produced output layout; nullopt = same as the (possibly converted)
  /// input layout.
  std::optional<ShardSpec> output;
  Collective forward_comm = Collective::kNone;
  /// Multiplier on the forward collective (expert-parallel MoE needs the
  /// dispatch *and* combine AllToAll, hence 2).
  int forward_comm_count = 1;
  Collective backward_comm = Collective::kNone;
  BwdSubject backward_subject = BwdSubject::kNone;

  /// True when this pattern leaves every weight replicated (pure DP /
  /// replica behaviour).
  bool replicates_weight() const { return weight.is_replicate(); }

  std::string to_string() const;
};

/// All patterns applicable to GraphNode `id` over a tensor-parallel group
/// of `num_shards` devices, with `dp_replicas` data-parallel replicas
/// around it (batch-splitting patterns need the batch to divide across
/// the whole dp x tp mesh). Weighted nodes get the catalog for their
/// primary kind filtered by divisibility; unweighted (glue) nodes get a
/// single "follow" pattern.
std::vector<ShardingPattern> patterns_for(const ir::TapGraph& tg,
                                          ir::GraphNodeId id, int num_shards,
                                          int dp_replicas = 1);

/// The "follow" pattern used for glue nodes.
ShardingPattern follow_pattern();

/// Precomputed pattern lists for every GraphNode at a fixed group size.
/// The planner routes tens of thousands of candidate subgraphs; building
/// the (string-heavy) pattern vectors once instead of per candidate keeps
/// the search sub-linear in practice.
class PatternTable {
 public:
  PatternTable(const ir::TapGraph& tg, int num_shards, int dp_replicas = 1);

  const std::vector<ShardingPattern>& at(ir::GraphNodeId id) const {
    return table_[static_cast<std::size_t>(id)];
  }
  int num_shards() const { return num_shards_; }
  int dp_replicas() const { return dp_replicas_; }

 private:
  int num_shards_;
  int dp_replicas_;
  std::vector<std::vector<ShardingPattern>> table_;
};

/// True when `kind` computes along the last axis and therefore cannot
/// accept an input split on it (softmax/layernorm/loss); the router inserts
/// an AllGather when such a layout arrives.
bool rejects_last_axis_split(OpKind kind);

}  // namespace tap::sharding
