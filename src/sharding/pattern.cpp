#include "sharding/pattern.h"

#include <algorithm>

#include "util/check.h"

namespace tap::sharding {

namespace {

using ir::GraphNode;
using ir::TapGraph;

/// The weighted op whose weight is largest — the pattern's subject.
const Node* primary_weight_op(const TapGraph& tg, const GraphNode& gn) {
  const Graph& g = *tg.source();
  const Node* best = nullptr;
  for (NodeId id : gn.weight_ops) {
    const Node& n = g.node(id);
    if (!best || n.weight_params() > best->weight_params()) best = &n;
  }
  return best;
}

/// Primary input activation spec of the cluster (the first external
/// producer's output). Used only for divisibility checks.
const TensorShape* primary_input_shape(const TapGraph& tg,
                                       const GraphNode& gn) {
  if (gn.inputs.empty()) return nullptr;
  return &tg.node(gn.inputs.front()).output.shape;
}

bool batch_divisible(const TensorShape* in, int parts) {
  return in != nullptr && in->rank() >= 1 && in->divisible(0, parts);
}

/// Total ways the batch axis is cut under the mesh: dp replicas times a
/// tp batch split.
int full_batch_parts(int num_shards, int dp_replicas) {
  return num_shards * std::max(1, dp_replicas);
}

ShardingPattern dp_pattern() {
  ShardingPattern p;
  p.name = "dp";
  p.input = ShardSpec::split(0);
  p.weight = ShardSpec::replicate();
  p.output = ShardSpec::split(0);
  p.backward_comm = Collective::kAllReduce;
  p.backward_subject = BwdSubject::kWeightGrad;
  return p;
}

ShardingPattern replicate_only_pattern() {
  // For norm-like ops: follow whatever layout arrives, keep the (tiny)
  // weight replicated, AllReduce its gradient.
  ShardingPattern p;
  p.name = "replicate";
  p.input = std::nullopt;  // follow
  p.weight = ShardSpec::replicate();
  p.output = std::nullopt;  // follow
  p.backward_comm = Collective::kAllReduce;
  p.backward_subject = BwdSubject::kWeightGrad;
  return p;
}

void add_matmul2d(std::vector<ShardingPattern>* out, const Node& w,
                  const TensorShape* in, int parts, int dp) {
  const TensorShape& ws = w.weight->shape;  // [K, N]
  if (batch_divisible(in, full_batch_parts(parts, dp)))
    out->push_back(dp_pattern());
  if (ws.divisible(0, parts)) {
    ShardingPattern p;
    p.name = "split_row";
    p.input = ShardSpec::split(-1);
    p.weight = ShardSpec::split(0);
    p.output = ShardSpec::replicate();
    p.forward_comm = Collective::kAllReduce;  // sum the partial products
    out->push_back(p);
  }
  if (ws.divisible(1, parts)) {
    ShardingPattern p;
    p.name = "split_col";
    p.input = ShardSpec::replicate();
    p.weight = ShardSpec::split(1);
    p.output = ShardSpec::split(-1);
    p.backward_comm = Collective::kAllReduce;  // input grads are partial
    p.backward_subject = BwdSubject::kInputGrad;
    out->push_back(p);
  }
}

void add_expert_bank(std::vector<ShardingPattern>* out, const Node& w,
                     const TensorShape* in, int parts, int dp) {
  const TensorShape& ws = w.weight->shape;  // [E, K, N]
  if (batch_divisible(in, full_batch_parts(parts, dp)))
    out->push_back(dp_pattern());
  if (ws.divisible(0, parts)) {
    ShardingPattern p;
    p.name = "expert_parallel";
    p.input = std::nullopt;  // tokens arrive in any layout
    p.weight = ShardSpec::split(0);
    p.output = std::nullopt;
    p.forward_comm = Collective::kAllToAll;  // dispatch + combine
    p.forward_comm_count = 2;
    out->push_back(p);
  }
  if (ws.divisible(2, parts)) {
    ShardingPattern p;
    p.name = "split_ff";
    p.input = ShardSpec::replicate();
    p.weight = ShardSpec::split(2);
    p.output = ShardSpec::replicate();
    p.forward_comm = Collective::kAllReduce;  // sum partial expert outputs
    out->push_back(p);
  }
}

void add_conv2d(std::vector<ShardingPattern>* out, const Node& w,
                const TensorShape* in, int parts, int dp) {
  const TensorShape& ws = w.weight->shape;  // [kh, kw, Cin, Cout]
  if (batch_divisible(in, full_batch_parts(parts, dp)))
    out->push_back(dp_pattern());
  if (ws.divisible(3, parts)) {
    ShardingPattern p;
    p.name = "split_cout";
    p.input = ShardSpec::replicate();
    p.weight = ShardSpec::split(3);
    p.output = ShardSpec::split(-1);  // NHWC channel split
    p.backward_comm = Collective::kAllReduce;
    p.backward_subject = BwdSubject::kInputGrad;
    out->push_back(p);
  }
  if (ws.divisible(2, parts)) {
    ShardingPattern p;
    p.name = "split_cin";
    p.input = ShardSpec::split(-1);
    p.weight = ShardSpec::split(2);
    p.output = ShardSpec::replicate();
    p.forward_comm = Collective::kAllReduce;
    out->push_back(p);
  }
}

void add_embedding(std::vector<ShardingPattern>* out, const Node& w,
                   const TensorShape* in, int parts, int dp) {
  const TensorShape& ws = w.weight->shape;  // [V, H]
  if (batch_divisible(in, full_batch_parts(parts, dp)))
    out->push_back(dp_pattern());
  if (ws.divisible(0, parts)) {
    ShardingPattern p;
    p.name = "split_vocab";
    p.input = ShardSpec::replicate();
    p.weight = ShardSpec::split(0);
    p.output = ShardSpec::replicate();
    p.forward_comm = Collective::kAllReduce;  // non-local ids hit zeros
    out->push_back(p);
  }
  if (ws.divisible(1, parts)) {
    ShardingPattern p;
    p.name = "split_hidden";
    p.input = ShardSpec::replicate();
    p.weight = ShardSpec::split(1);
    p.output = ShardSpec::split(-1);
    out->push_back(p);
  }
}

}  // namespace

std::string ShardingPattern::to_string() const {
  // Appends only (no operator+ chains): GCC 12's -Wrestrict false
  // positive (PR105651) fires on `const char* + std::string&&` under
  // -O2 inlining, and CI compiles with -Werror.
  std::string s = name;
  s += "{in=";
  s += input ? input->to_string() : "*";
  s += ",w=";
  s += weight.to_string();
  s += ",out=";
  s += output ? output->to_string() : "*";
  if (forward_comm != Collective::kNone) {
    s += ",fwd=";
    s += collective_name(forward_comm);
    if (forward_comm_count > 1) {
      s += 'x';
      s += std::to_string(forward_comm_count);
    }
  }
  if (backward_comm != Collective::kNone) {
    s += ",bwd=";
    s += collective_name(backward_comm);
    s += backward_subject == BwdSubject::kWeightGrad ? "(wgrad)" : "(igrad)";
  }
  s += '}';
  return s;
}

ShardingPattern follow_pattern() {
  ShardingPattern p;
  p.name = "follow";
  return p;
}

bool rejects_last_axis_split(OpKind kind) {
  switch (kind) {
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kCrossEntropy:
    case OpKind::kReduceMean:
    case OpKind::kReduceSum:
    case OpKind::kTopK:
      return true;
    default:
      return false;
  }
}

PatternTable::PatternTable(const ir::TapGraph& tg, int num_shards,
                           int dp_replicas)
    : num_shards_(num_shards), dp_replicas_(dp_replicas) {
  table_.reserve(tg.num_nodes());
  for (const auto& n : tg.nodes())
    table_.push_back(patterns_for(tg, n.id, num_shards, dp_replicas));
}

std::vector<ShardingPattern> patterns_for(const ir::TapGraph& tg,
                                          ir::GraphNodeId id,
                                          int num_shards, int dp_replicas) {
  TAP_CHECK_GE(num_shards, 1);
  TAP_CHECK_GE(dp_replicas, 1);
  const GraphNode& gn = tg.node(id);
  if (!gn.has_weight()) return {follow_pattern()};

  const Node* w = primary_weight_op(tg, gn);
  TAP_CHECK(w != nullptr);
  const TensorShape* in = primary_input_shape(tg, gn);

  std::vector<ShardingPattern> out;
  if (num_shards == 1) {
    // Pure data parallelism (tp = 1): batch split if it divides, else
    // replication.
    if (dp_replicas > 1 &&
        batch_divisible(in, full_batch_parts(1, dp_replicas))) {
      out.push_back(dp_pattern());
    }
    out.push_back(replicate_only_pattern());
    return out;
  }

  const bool is_expert_bank =
      w->kind == OpKind::kMatMul && w->weight->shape.rank() == 3;
  switch (w->kind) {
    case OpKind::kMatMul:
      if (is_expert_bank) {
        add_expert_bank(&out, *w, in, num_shards, dp_replicas);
      } else {
        add_matmul2d(&out, *w, in, num_shards, dp_replicas);
      }
      break;
    case OpKind::kConv2D:
      add_conv2d(&out, *w, in, num_shards, dp_replicas);
      break;
    case OpKind::kEmbedding:
      add_embedding(&out, *w, in, num_shards, dp_replicas);
      break;
    case OpKind::kLayerNorm:
    case OpKind::kBatchNorm:
    case OpKind::kBiasAdd:
    case OpKind::kMoeRouter:
      out.push_back(replicate_only_pattern());
      break;
    default:
      break;
  }
  if (out.empty()) {
    // "If there is no viable way to split, we can always fall back to
    // replicating the tensors" (§3.4).
    out.push_back(replicate_only_pattern());
  }
  return out;
}

}  // namespace tap::sharding
