// Candidate-plan enumeration over a pruned subgraph family (§4.4,
// Algorithm 2's enumerateAllPlans). The search space of one family is the
// Cartesian product of its weighted members' applicable patterns — a T5
// transformer block yields 3^6 = 729 candidates (§6.3.1); replicate-only
// members contribute a factor of 1.
#pragma once

#include <cstdint>
#include <vector>

#include "pruning/prune.h"
#include "sharding/plan.h"

namespace tap::sharding {

class FamilyPlanEnumerator {
 public:
  FamilyPlanEnumerator(const ir::TapGraph& tg,
                       const pruning::SubgraphFamily& family, int num_shards);

  /// Product of per-member pattern counts.
  std::int64_t total_plans() const;

  /// Advances to the next candidate. `member_choice` is aligned with
  /// family.member_nodes (glue members always 0). Returns false when the
  /// space is exhausted; the first call yields the all-zeros plan.
  bool next(std::vector<int>* member_choice);

  /// Restarts the enumeration.
  void reset();

 private:
  std::vector<int> counts_;
  std::vector<int> current_;
  bool exhausted_ = false;
  bool started_ = false;
};

}  // namespace tap::sharding
