// The model zoo: builders for every architecture in the paper's Table 1
// plus the experiment workloads (T5 depth scaling, ResNet width scaling).
//
// These are *training graphs*: forward pass ending in a loss, plus the
// auxiliary init/checkpoint operators a TF-1.x graph carries (which the IR
// lowering of §4.2 trims). Only shapes and structure matter to tap — no
// numerical weights live here.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace tap::models {

// ---------------------------------------------------------------------------
// Dense transformers (T5 / BERT / GPT / ViT)
// ---------------------------------------------------------------------------

struct TransformerConfig {
  std::string name = "t5";
  /// Encoder layers; an encoder-decoder model gets `num_layers` of each.
  int num_layers = 24;
  bool encoder_decoder = true;  ///< T5-style; false = single stack
  bool causal = false;          ///< GPT-style decoder-only stack
  std::int64_t d_model = 1024;
  std::int64_t d_ff = 4096;
  std::int64_t num_heads = 16;
  std::int64_t vocab = 32128;
  std::int64_t batch = 16;
  std::int64_t seq_len = 512;
  bool with_auxiliaries = true;  ///< emit init/checkpoint aux ops
};

Graph build_transformer(const TransformerConfig& cfg);

/// T5-large: 24+24 layers, d_model 1024, d_ff 4096 (~770M params).
TransformerConfig t5_large();
/// T5 with a custom encoder/decoder depth (Fig. 9 depth scaling).
TransformerConfig t5_with_layers(int num_layers);
/// BERT-large: 24 layers, d_model 1024 (~340M params).
TransformerConfig bert_large();
/// GPT-3: 96 layers, d_model 12288 (~175B params; graph only).
TransformerConfig gpt3();
/// ViT-Huge: 32 layers, d_model 1280, patch tokens (~632M params).
TransformerConfig vit_huge();

/// Appends one transformer block (pre-LN MHA + FFN) under scope
/// "block_<index>"; returns the residual-stream output node. Exposed so
/// tests and custom models can reuse the exact block shape.
NodeId append_transformer_block(GraphBuilder& b, NodeId x, int index,
                                std::int64_t num_heads, std::int64_t d_ff,
                                bool cross_attention = false,
                                NodeId memory = kInvalidNode);

// ---------------------------------------------------------------------------
// ResNets (width scaling via the classifier layer, Fig. 3a / Fig. 10)
// ---------------------------------------------------------------------------

struct ResNetConfig {
  std::string name = "resnet50";
  /// Bottleneck block counts for the four stages ({3,4,6,3} = ResNet-50).
  std::vector<int> stage_blocks = {3, 4, 6, 3};
  std::int64_t num_classes = 1024;
  std::int64_t batch = 1024;
  std::int64_t image = 224;
  bool with_auxiliaries = true;
};

Graph build_resnet(const ResNetConfig& cfg);

ResNetConfig resnet50(std::int64_t num_classes = 1024);
ResNetConfig resnet101(std::int64_t num_classes = 1024);
ResNetConfig resnet152(std::int64_t num_classes = 1024);

// ---------------------------------------------------------------------------
// Mixture-of-experts transformers (WideNet / V-MoE / Switch / M6)
// ---------------------------------------------------------------------------

struct MoeConfig {
  std::string name = "moe";
  int num_layers = 12;
  /// Every `moe_every`-th block uses an expert FFN (1 = all blocks).
  int moe_every = 1;
  std::int64_t d_model = 768;
  std::int64_t d_ff = 3072;
  std::int64_t num_heads = 12;
  std::int64_t num_experts = 32;
  double capacity_factor = 1.25;
  std::int64_t vocab = 32000;
  std::int64_t batch = 16;
  std::int64_t seq_len = 512;
  bool with_auxiliaries = true;
};

Graph build_moe_transformer(const MoeConfig& cfg);

/// WideNet-style: 12 blocks, 32 experts, narrow d_model (~63M params).
MoeConfig widenet();
/// V-MoE-style: 24 MoE blocks, 32 experts, ViT-Huge-ish width (~15B).
MoeConfig v_moe();
/// Switch-Transformer-style: 15 MoE blocks, 2048 experts (~1.6T).
MoeConfig switch_transformer();
/// M6-MoE at ~100B parameters (Fig. 15).
MoeConfig m6_100b();
/// M6-MoE at ~1T parameters (Fig. 15).
MoeConfig m6_1t();

// ---------------------------------------------------------------------------
// Multimodal / speech (CLIP, wav2vec 2.0)
// ---------------------------------------------------------------------------

struct ClipConfig {
  std::string name = "clip_base";
  int vision_layers = 12;
  int text_layers = 12;
  std::int64_t d_model = 512;
  std::int64_t d_ff = 2048;
  std::int64_t num_heads = 8;
  std::int64_t vocab = 49408;
  std::int64_t batch = 64;
  std::int64_t image = 224;
  std::int64_t patch = 32;
  std::int64_t text_len = 77;
  bool with_auxiliaries = true;
};

Graph build_clip(const ClipConfig& cfg);
ClipConfig clip_base();

struct Wav2VecConfig {
  std::string name = "wav2vec2";
  int conv_layers = 7;
  int transformer_layers = 24;
  std::int64_t d_model = 1024;
  std::int64_t d_ff = 4096;
  std::int64_t num_heads = 16;
  std::int64_t conv_dim = 512;
  std::int64_t batch = 8;
  std::int64_t samples = 16384;  ///< raw audio samples per example
  bool with_auxiliaries = true;
};

Graph build_wav2vec(const Wav2VecConfig& cfg);
Wav2VecConfig wav2vec2_large();

// ---------------------------------------------------------------------------
// Zoo registry (Table 1)
// ---------------------------------------------------------------------------

struct ZooEntry {
  std::string scaling;        ///< "width" or "depth"
  std::string task;           ///< e.g. "Vision", "Language Model"
  std::string model;          ///< display name
  std::string shared_kind;    ///< expected shared-subgraph kind
  std::int64_t paper_params;  ///< parameter count the paper reports
  int paper_multiplicity;     ///< shared-subgraph count the paper reports
  std::function<Graph()> build;
};

/// All ten rows of Table 1, in paper order.
std::vector<ZooEntry> table1_zoo();

}  // namespace tap::models
