#include <string>

#include "models/models.h"
#include "util/check.h"

namespace tap::models {

namespace {

/// Multi-head attention under the current scope. `memory` supplies K/V for
/// cross-attention; self-attention reads them from `x`.
NodeId attention(GraphBuilder& b, NodeId x, std::int64_t num_heads,
                 NodeId memory) {
  const Graph& g = b.graph();
  TensorShape xs = g.node(x).output.shape;  // [B, S, D]
  std::int64_t B = xs.dim(0), S = xs.dim(1), D = xs.dim(2);
  TAP_CHECK_EQ(D % num_heads, 0);
  std::int64_t dh = D / num_heads;
  NodeId kv_src = memory == kInvalidNode ? x : memory;
  std::int64_t Skv = g.node(kv_src).output.shape.dim(1);

  NodeId q = b.matmul("q/proj", x, D);
  NodeId k = b.matmul("k/proj", kv_src, D);
  NodeId v = b.matmul("v/proj", kv_src, D);

  auto heads = [&](const std::string& nm, NodeId t, std::int64_t s) {
    NodeId r = b.reshape(nm + "/split_heads", t, TensorShape{B, s, num_heads, dh});
    return b.transpose(nm + "/to_bhsd", r, {0, 2, 1, 3});  // [B, H, s, dh]
  };
  NodeId qh = heads("q", q, S);
  NodeId kh = heads("k", k, Skv);
  NodeId vh = heads("v", v, Skv);

  NodeId kt = b.transpose("k/transpose", kh, {0, 1, 3, 2});   // [B,H,dh,Skv]
  NodeId scores = b.batch_matmul("scores", qh, kt);           // [B,H,S,Skv]
  NodeId scaled = b.unary("scale", OpKind::kScale, scores);
  NodeId probs = b.softmax("probs", scaled);
  NodeId drop = b.dropout("attn_drop", probs);
  NodeId ctx = b.batch_matmul("context", drop, vh);           // [B,H,S,dh]
  NodeId merged = b.transpose("merge/to_bshd", ctx, {0, 2, 1, 3});
  NodeId flat = b.reshape("merge/flatten", merged, TensorShape{B, S, D});
  return b.matmul("o/proj", flat, D);
}

/// Feed-forward network (dense): LN handled by caller.
NodeId ffn(GraphBuilder& b, NodeId x, std::int64_t d_ff) {
  std::int64_t D = b.graph().node(x).output.shape.dim(-1);
  NodeId wi = b.matmul("wi/proj", x, d_ff);
  NodeId act = b.gelu("act", wi);
  NodeId wo = b.matmul("wo/proj", act, D);
  return b.dropout("drop", wo);
}

/// One stack ("encoder"/"decoder") of `n` blocks; returns the output node.
NodeId stack(GraphBuilder& b, NodeId x, int n, const TransformerConfig& cfg,
             bool cross, NodeId memory) {
  for (int i = 0; i < n; ++i) {
    x = append_transformer_block(b, x, i, cfg.num_heads, cfg.d_ff, cross,
                                 memory);
  }
  auto s = b.scope("final_ln");
  return b.layer_norm("ln", x);
}

}  // namespace

NodeId append_transformer_block(GraphBuilder& b, NodeId x, int index,
                                std::int64_t num_heads, std::int64_t d_ff,
                                bool cross_attention, NodeId memory) {
  auto blk = b.scope("block_" + std::to_string(index));
  {
    auto s = b.scope("mha");
    NodeId ln = b.layer_norm("ln", x);
    NodeId att = attention(b, ln, num_heads, kInvalidNode);
    NodeId drop = b.dropout("drop", att);
    x = b.add("residual", x, drop);
  }
  if (cross_attention) {
    auto s = b.scope("cross");
    NodeId ln = b.layer_norm("ln", x);
    NodeId att = attention(b, ln, num_heads, memory);
    NodeId drop = b.dropout("drop", att);
    x = b.add("residual", x, drop);
  }
  {
    auto s = b.scope("ffn");
    NodeId ln = b.layer_norm("ln", x);
    NodeId f = ffn(b, ln, d_ff);
    x = b.add("residual", x, f);
  }
  return x;
}

Graph build_transformer(const TransformerConfig& cfg) {
  GraphBuilder b(cfg.name);
  auto root = b.scope(cfg.name);

  NodeId enc_out = kInvalidNode;
  NodeId ids = b.placeholder("inputs/ids",
                             TensorShape{cfg.batch, cfg.seq_len}, DType::kI32);
  {
    auto s = b.scope(cfg.encoder_decoder || !cfg.causal ? "encoder"
                                                        : "decoder");
    NodeId emb = b.embedding("embed/tokens", ids, cfg.vocab, cfg.d_model);
    NodeId x = b.dropout("embed/drop", emb);
    enc_out = stack(b, x, cfg.num_layers, cfg, /*cross=*/false, kInvalidNode);
  }

  NodeId final_out = enc_out;
  if (cfg.encoder_decoder) {
    NodeId dec_ids = b.placeholder(
        "inputs/decoder_ids", TensorShape{cfg.batch, cfg.seq_len}, DType::kI32);
    auto s = b.scope("decoder");
    NodeId emb =
        b.embedding("embed/tokens", dec_ids, cfg.vocab, cfg.d_model);
    NodeId x = b.dropout("embed/drop", emb);
    for (int i = 0; i < cfg.num_layers; ++i) {
      x = append_transformer_block(b, x, i, cfg.num_heads, cfg.d_ff,
                                   /*cross_attention=*/true, enc_out);
    }
    {
      auto fs = b.scope("final_ln");
      x = b.layer_norm("ln", x);
    }
    final_out = x;
  }

  {
    auto s = b.scope("head");
    NodeId logits = b.matmul("lm/proj", final_out, cfg.vocab);
    NodeId labels = b.placeholder(
        "labels", TensorShape{cfg.batch, cfg.seq_len, cfg.vocab});
    b.cross_entropy("loss", logits, labels);
  }

  if (cfg.with_auxiliaries) b.add_training_auxiliaries();
  return b.take();
}

TransformerConfig t5_large() {
  TransformerConfig cfg;
  cfg.name = "t5_large";
  return cfg;
}

TransformerConfig t5_with_layers(int num_layers) {
  TransformerConfig cfg = t5_large();
  cfg.name = "t5_" + std::to_string(num_layers) + "l";
  cfg.num_layers = num_layers;
  return cfg;
}

TransformerConfig bert_large() {
  TransformerConfig cfg;
  cfg.name = "bert_large";
  cfg.encoder_decoder = false;
  cfg.num_layers = 24;
  cfg.d_model = 1024;
  cfg.d_ff = 4096;
  cfg.num_heads = 16;
  cfg.vocab = 30522;
  return cfg;
}

TransformerConfig gpt3() {
  TransformerConfig cfg;
  cfg.name = "gpt3";
  cfg.encoder_decoder = false;
  cfg.causal = true;
  cfg.num_layers = 96;
  cfg.d_model = 12288;
  cfg.d_ff = 4 * 12288;
  cfg.num_heads = 96;
  cfg.vocab = 50257;
  cfg.batch = 4;
  cfg.seq_len = 2048;
  return cfg;
}

TransformerConfig vit_huge() {
  TransformerConfig cfg;
  cfg.name = "vit_huge";
  cfg.encoder_decoder = false;
  cfg.num_layers = 32;
  cfg.d_model = 1280;
  cfg.d_ff = 5120;
  cfg.num_heads = 16;
  cfg.vocab = 257;  // 16x16 patch vocabulary stand-in + class token
  cfg.batch = 64;
  cfg.seq_len = 257;
  return cfg;
}

}  // namespace tap::models
