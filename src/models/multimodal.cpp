#include <string>

#include "models/models.h"
#include "util/check.h"

namespace tap::models {

namespace {

/// Encoder stack of `layers` transformer blocks over `x` [B, S, D].
NodeId encoder_stack(GraphBuilder& b, NodeId x, int layers,
                     std::int64_t heads, std::int64_t d_ff) {
  for (int i = 0; i < layers; ++i) {
    x = append_transformer_block(b, x, i, heads, d_ff);
  }
  auto fs = b.scope("final_ln");
  return b.layer_norm("ln", x);
}

}  // namespace

Graph build_clip(const ClipConfig& cfg) {
  GraphBuilder b(cfg.name);
  auto root = b.scope(cfg.name);

  NodeId vision_feat;
  {
    auto tower = b.scope("vision");
    NodeId img = b.placeholder(
        "inputs/images", TensorShape{cfg.batch, cfg.image, cfg.image, 3});
    NodeId patches;
    {
      auto s = b.scope("patchify");
      NodeId conv = b.conv2d("conv", img, cfg.d_model,
                             static_cast<int>(cfg.patch),
                             static_cast<int>(cfg.patch));
      std::int64_t tokens = (cfg.image / cfg.patch) * (cfg.image / cfg.patch);
      patches = b.reshape("to_tokens", conv,
                          TensorShape{cfg.batch, tokens, cfg.d_model});
    }
    NodeId x = encoder_stack(b, patches, cfg.vision_layers, cfg.num_heads,
                             cfg.d_ff);
    auto hs = b.scope("proj");
    // Mean-pool over tokens then project: approximates CLS pooling.
    NodeId pooled = b.op("mean", OpKind::kReduceMean, {x},
                         {TensorShape{cfg.batch, cfg.d_model}, DType::kF32});
    vision_feat = b.matmul("out", pooled, cfg.d_model);
  }

  NodeId text_feat;
  {
    auto tower = b.scope("text");
    NodeId ids = b.placeholder("inputs/ids",
                               TensorShape{cfg.batch, cfg.text_len},
                               DType::kI32);
    NodeId emb = b.embedding("embed/tokens", ids, cfg.vocab, cfg.d_model);
    NodeId x = encoder_stack(b, emb, cfg.text_layers, cfg.num_heads, cfg.d_ff);
    auto hs = b.scope("proj");
    NodeId pooled = b.op("mean", OpKind::kReduceMean, {x},
                         {TensorShape{cfg.batch, cfg.d_model}, DType::kF32});
    text_feat = b.matmul("out", pooled, cfg.d_model);
  }

  {
    auto s = b.scope("head");
    // Contrastive similarity matrix: [B, D] x [D, B] -> [B, B].
    NodeId tt = b.transpose("text_t", text_feat, {1, 0});
    NodeId sim = b.op("similarity", OpKind::kMatMul, {vision_feat, tt},
                      {TensorShape{cfg.batch, cfg.batch}, DType::kF32});
    NodeId labels = b.placeholder("labels",
                                  TensorShape{cfg.batch, cfg.batch});
    b.cross_entropy("loss", sim, labels);
  }

  if (cfg.with_auxiliaries) b.add_training_auxiliaries();
  return b.take();
}

ClipConfig clip_base() { return ClipConfig{}; }

Graph build_wav2vec(const Wav2VecConfig& cfg) {
  GraphBuilder b(cfg.name);
  auto root = b.scope(cfg.name);

  NodeId x = b.placeholder("inputs/audio",
                           TensorShape{cfg.batch, cfg.samples, 1, 1});
  {
    auto fe = b.scope("feature_extractor");
    // wav2vec 2.0 conv stack: strides (5,2,2,2,2,2,2), 512 channels.
    const int strides[7] = {5, 2, 2, 2, 2, 2, 2};
    const int kernels[7] = {10, 3, 3, 3, 3, 2, 2};
    for (int i = 0; i < cfg.conv_layers; ++i) {
      auto s = b.scope("conv_" + std::to_string(i));
      int k = kernels[i % 7];
      int st = strides[i % 7];
      x = b.conv2d("conv", x, cfg.conv_dim, k, st);
      x = b.layer_norm("ln", x);
      x = b.gelu("act", x);
    }
  }

  const TensorShape fs = b.graph().node(x).output.shape;  // [B, T, 1, C]
  NodeId tokens = b.reshape("to_tokens", x,
                            TensorShape{fs.dim(0), fs.dim(1) * fs.dim(2),
                                        fs.dim(3)});
  {
    auto enc = b.scope("encoder");
    NodeId proj = b.matmul("proj/in", tokens, cfg.d_model);
    NodeId y = encoder_stack(b, proj, cfg.transformer_layers, cfg.num_heads,
                             cfg.d_ff);
    auto hs = b.scope("head");
    NodeId logits = b.matmul("proj/out", y, cfg.conv_dim);
    NodeId labels = b.placeholder(
        "labels", b.graph().node(logits).output.shape);
    b.cross_entropy("loss", logits, labels);
  }

  if (cfg.with_auxiliaries) b.add_training_auxiliaries();
  return b.take();
}

Wav2VecConfig wav2vec2_large() { return Wav2VecConfig{}; }

std::vector<ZooEntry> table1_zoo() {
  std::vector<ZooEntry> zoo;
  zoo.push_back({"width", "Vision", "ResNet50", "Conv", 23'000'000, 50,
                 [] { return build_resnet(resnet50(1024)); }});
  zoo.push_back({"width", "Vision + Language", "CLIP-Base", "Transformer",
                 63'000'000, 12, [] { return build_clip(clip_base()); }});
  zoo.push_back({"width", "Language Model", "WideNet", "MoE layer",
                 63'000'000, 32,
                 [] { return build_moe_transformer(widenet()); }});
  zoo.push_back({"width", "Vision", "ViT-Huge", "Transformer", 632'000'000,
                 32, [] { return build_transformer(vit_huge()); }});
  zoo.push_back({"width", "Vision", "V-MoE", "MoE layer", 15'000'000'000, 24,
                 [] { return build_moe_transformer(v_moe()); }});
  zoo.push_back({"depth", "Speech", "wav2vec 2.0", "Conv, Transformer",
                 317'000'000, 24,
                 [] { return build_wav2vec(wav2vec2_large()); }});
  zoo.push_back({"depth", "Language Model", "BERT", "Transformer",
                 340'000'000, 24,
                 [] { return build_transformer(bert_large()); }});
  zoo.push_back({"depth", "Language Model", "T5-Large", "Transformer",
                 770'000'000, 24,
                 [] { return build_transformer(t5_large()); }});
  zoo.push_back({"depth", "Language Model", "GPT-3", "Transformer",
                 175'000'000'000, 96,
                 [] { return build_transformer(gpt3()); }});
  zoo.push_back({"depth", "Language Model", "Switch Transformer", "MoE layer",
                 1'571'000'000'000, 15,
                 [] { return build_moe_transformer(switch_transformer()); }});
  return zoo;
}

}  // namespace tap::models
