#include <string>

#include "models/models.h"
#include "util/check.h"

namespace tap::models {

namespace {

/// Self-attention + expert-FFN transformer block. Dense blocks fall back to
/// append_transformer_block; MoE blocks replace the FFN with router →
/// dispatch → expert bank → combine (the "MoE layer" shared subgraph of
/// Table 1).
NodeId moe_block(GraphBuilder& b, NodeId x, int index, const MoeConfig& cfg) {
  auto blk = b.scope("block_" + std::to_string(index));
  {
    auto s = b.scope("mha");
    NodeId ln = b.layer_norm("ln", x);
    // A compact attention: QKV fused projection + output projection keeps
    // the MoE graphs (up to Switch-1.6T scale) small while preserving the
    // weighted ops tensor parallelism cares about.
    NodeId qkv = b.matmul("qkv/proj", ln, 3 * cfg.d_model);
    NodeId mix = b.softmax("probs", qkv);
    NodeId slim = b.matmul("o/gate", mix, cfg.d_model);
    NodeId o = b.matmul("o/proj", slim, cfg.d_model);
    NodeId drop = b.dropout("drop", o);
    x = b.add("residual", x, drop);
  }
  {
    auto s = b.scope("moe");
    const TensorShape token_shape = b.graph().node(x).output.shape;
    std::int64_t tokens = cfg.batch * cfg.seq_len;
    std::int64_t capacity = static_cast<std::int64_t>(
        static_cast<double>(tokens) * cfg.capacity_factor /
        static_cast<double>(cfg.num_experts));
    if (capacity < 1) capacity = 1;

    NodeId ln = b.layer_norm("ln", x);
    NodeId router = b.moe_router("router", ln, cfg.num_experts);
    NodeId dispatched = b.moe_dispatch("dispatch", ln, router, capacity);
    NodeId wi = b.expert_matmul("experts/wi", dispatched, cfg.d_ff);
    NodeId act = b.gelu("experts/act", wi);
    NodeId wo = b.expert_matmul("experts/wo", act, cfg.d_model);
    NodeId combined = b.moe_combine("combine", wo, router, token_shape);
    x = b.add("residual", x, combined);
  }
  return x;
}

}  // namespace

Graph build_moe_transformer(const MoeConfig& cfg) {
  TAP_CHECK_GE(cfg.moe_every, 1);
  GraphBuilder b(cfg.name);
  auto root = b.scope(cfg.name);

  NodeId ids = b.placeholder("inputs/ids",
                             TensorShape{cfg.batch, cfg.seq_len}, DType::kI32);
  NodeId x;
  {
    auto s = b.scope("encoder");
    NodeId emb = b.embedding("embed/tokens", ids, cfg.vocab, cfg.d_model);
    x = b.dropout("embed/drop", emb);
    for (int i = 0; i < cfg.num_layers; ++i) {
      if ((i + 1) % cfg.moe_every == 0) {
        x = moe_block(b, x, i, cfg);
      } else {
        x = append_transformer_block(b, x, i, cfg.num_heads, cfg.d_ff);
      }
    }
    auto fs = b.scope("final_ln");
    x = b.layer_norm("ln", x);
  }

  {
    auto s = b.scope("head");
    NodeId pooled = b.reshape(
        "flatten", x, TensorShape{cfg.batch, cfg.seq_len * cfg.d_model});
    NodeId logits = b.matmul("fc/proj", pooled, 2);  // tiny task head
    NodeId labels = b.placeholder("labels", TensorShape{cfg.batch, 2});
    b.cross_entropy("loss", logits, labels);
  }

  if (cfg.with_auxiliaries) b.add_training_auxiliaries();
  return b.take();
}

MoeConfig widenet() {
  // WideNet shares MoE parameters across layers, which we do not model;
  // a narrower width plus MoE-every-4 lands at the same ~63M total.
  MoeConfig cfg;
  cfg.name = "widenet";
  cfg.num_layers = 12;
  cfg.moe_every = 4;
  cfg.d_model = 256;
  cfg.d_ff = 1024;
  cfg.num_heads = 4;
  cfg.num_experts = 32;
  cfg.vocab = 32000;
  return cfg;
}

MoeConfig v_moe() {
  MoeConfig cfg;
  cfg.name = "v_moe";
  cfg.num_layers = 24;
  cfg.d_model = 1280;
  cfg.d_ff = 5120;
  cfg.num_heads = 16;
  cfg.num_experts = 32;
  cfg.vocab = 1024;  // patch vocabulary stand-in
  cfg.seq_len = 576;
  return cfg;
}

MoeConfig switch_transformer() {
  MoeConfig cfg;
  cfg.name = "switch_transformer";
  cfg.num_layers = 15;
  cfg.d_model = 2560;
  cfg.d_ff = 10240;
  cfg.num_heads = 32;
  cfg.num_experts = 2048;
  cfg.vocab = 32128;
  cfg.batch = 8;
  cfg.seq_len = 512;
  return cfg;
}

MoeConfig m6_100b() {
  MoeConfig cfg;
  cfg.name = "m6_moe_100b";
  cfg.num_layers = 24;
  cfg.d_model = 1024;
  cfg.d_ff = 4096;
  cfg.num_heads = 16;
  cfg.num_experts = 512;
  cfg.vocab = 50000;
  cfg.batch = 8;
  return cfg;
}

MoeConfig m6_1t() {
  MoeConfig cfg = m6_100b();
  cfg.name = "m6_moe_1t";
  cfg.num_experts = 960;
  cfg.d_model = 2048;
  cfg.d_ff = 8192;
  cfg.num_layers = 32;
  return cfg;
}

}  // namespace tap::models
