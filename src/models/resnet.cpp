#include <string>

#include "models/models.h"
#include "util/check.h"

namespace tap::models {

namespace {

/// Standard bottleneck residual block (1x1 down, 3x3, 1x1 up).
NodeId bottleneck(GraphBuilder& b, NodeId x, int index, std::int64_t mid,
                  std::int64_t out, int stride) {
  auto blk = b.scope("block_" + std::to_string(index));
  const Graph& g = b.graph();
  NodeId shortcut = x;
  bool reshape_needed =
      stride != 1 || g.node(x).output.shape.dim(3) != out;
  if (reshape_needed) {
    auto s = b.scope("shortcut");
    shortcut = b.conv2d("conv", x, out, 1, stride);
    shortcut = b.batch_norm("bn", shortcut);
  }
  NodeId y;
  {
    auto s = b.scope("conv_1");
    y = b.conv2d("conv", x, mid, 1, 1);
    y = b.batch_norm("bn", y);
    y = b.relu("relu", y);
  }
  {
    auto s = b.scope("conv_2");
    y = b.conv2d("conv", y, mid, 3, stride);
    y = b.batch_norm("bn", y);
    y = b.relu("relu", y);
  }
  {
    auto s = b.scope("conv_3");
    y = b.conv2d("conv", y, out, 1, 1);
    y = b.batch_norm("bn", y);
  }
  NodeId sum = b.add("residual", shortcut, y);
  return b.relu("out", sum);
}

}  // namespace

Graph build_resnet(const ResNetConfig& cfg) {
  TAP_CHECK_EQ(cfg.stage_blocks.size(), 4u);
  GraphBuilder b(cfg.name);
  auto root = b.scope(cfg.name);

  NodeId x = b.placeholder("inputs/images",
                           TensorShape{cfg.batch, cfg.image, cfg.image, 3});
  {
    auto s = b.scope("stem");
    x = b.conv2d("conv", x, 64, 7, 2);
    x = b.batch_norm("bn", x);
    x = b.relu("relu", x);
    x = b.max_pool("pool", x, 3, 2);
  }

  const std::int64_t stage_out[4] = {256, 512, 1024, 2048};
  for (int stage = 0; stage < 4; ++stage) {
    auto s = b.scope("stage_" + std::to_string(stage + 1));
    std::int64_t mid = stage_out[stage] / 4;
    for (int i = 0; i < cfg.stage_blocks[static_cast<std::size_t>(stage)];
         ++i) {
      int stride = (i == 0 && stage > 0) ? 2 : 1;
      x = bottleneck(b, x, i, mid, stage_out[stage], stride);
    }
  }

  {
    auto s = b.scope("head");
    NodeId pooled = b.global_avg_pool("gap", x);  // [B, 2048]
    NodeId logits = b.matmul("fc/proj", pooled, cfg.num_classes);
    NodeId labels =
        b.placeholder("labels", TensorShape{cfg.batch, cfg.num_classes});
    b.cross_entropy("loss", logits, labels);
  }

  if (cfg.with_auxiliaries) b.add_training_auxiliaries();
  return b.take();
}

ResNetConfig resnet50(std::int64_t num_classes) {
  ResNetConfig cfg;
  cfg.name = "resnet50";
  cfg.stage_blocks = {3, 4, 6, 3};
  cfg.num_classes = num_classes;
  return cfg;
}

ResNetConfig resnet101(std::int64_t num_classes) {
  ResNetConfig cfg;
  cfg.name = "resnet101";
  cfg.stage_blocks = {3, 4, 23, 3};
  cfg.num_classes = num_classes;
  return cfg;
}

ResNetConfig resnet152(std::int64_t num_classes) {
  ResNetConfig cfg;
  cfg.name = "resnet152";
  cfg.stage_blocks = {3, 8, 36, 3};
  cfg.num_classes = num_classes;
  return cfg;
}

}  // namespace tap::models
