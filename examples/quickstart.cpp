// Quickstart: derive a tensor-parallel plan for a T5 model on a 2-node
// cluster of 8 GPUs each, then estimate its training-step time.
//
//   build            -> a framework graph (tap::models or GraphBuilder)
//   ir::lower        -> the TAP IR (GraphNode clusters)
//   core::auto_parallel -> the best data/tensor parallel plan
//   rewrite::rewrite_graph -> the per-device SPMD graph
//   sim::simulate_step -> iteration time + memory on the cluster model
#include <cstdio>

#include "core/tap.h"
#include "core/visualize.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "rewrite/rewrite.h"
#include "sim/simulator.h"
#include "util/strings.h"

int main() {
  using namespace tap;

  // 1. A model. Any graph with TF-style name scopes works; here: T5 with
  //    8 encoder + 8 decoder layers.
  Graph model = models::build_transformer(models::t5_with_layers(8));
  std::printf("model: %s — %s trainable params, %zu ops\n",
              model.name().c_str(),
              util::human_count(static_cast<double>(model.total_params()))
                  .c_str(),
              model.num_nodes());

  // 2. Lower to the TAP IR.
  ir::LoweringStats lstats;
  ir::TapGraph tg = ir::lower(model, {}, &lstats);
  std::printf("lowered: %zu ops -> %zu GraphNodes (%zu weight variables)\n",
              lstats.original_nodes, lstats.graph_nodes,
              lstats.weight_variables);

  // 3. The physical system S(m, n): 2 nodes x 8 V100s over 32 Gbps
  //    Ethernet.
  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_cluster(2);

  // 4. Search — sweeping every (dp, tp) device-mesh factorization (the
  //    paper's `tap.split(mesh)` front-end).
  core::TapResult result = core::auto_parallel_best_mesh(tg, opts);
  opts.num_shards = result.best_plan.num_shards;
  opts.dp_replicas = result.best_plan.dp_replicas;
  std::printf("chosen mesh [dp, tp] = %s\n",
              result.best_plan.mesh().to_string().c_str());
  std::printf(
      "search: %lld candidates (%lld valid) in %.1f ms; "
      "%zu unique subgraphs, fold depth %d\n",
      static_cast<long long>(result.candidate_plans),
      static_cast<long long>(result.valid_plans),
      result.search_seconds * 1e3, result.pruning.unique_subgraphs(),
      result.pruning.fold_depth);
  std::printf("plan comm cost: %.1f ms/step (fwd %.1f + bwd %.1f)\n",
              result.cost.total() * 1e3, result.cost.forward_comm_s * 1e3,
              result.cost.backward_comm_s * 1e3);

  // 5. Inspect the discovered plan (Fig. 14 style).
  std::printf("%s", core::visualize_plan(tg, result.best_plan,
                                         result.pruning)
                        .c_str());

  // 6. Rewrite into the per-device SPMD graph.
  rewrite::RewriteResult rw =
      rewrite::rewrite_graph(model, tg, result.routed, opts.num_shards);
  std::printf("rewritten graph: %zu nodes (%zu collectives inserted, %zu "
              "aux restored)\n",
              rw.parallel.num_nodes(), rw.comm_nodes, rw.aux_restored);

  // 7. Simulate one training iteration.
  sim::StepBreakdown step =
      sim::simulate_step(tg, result.routed, opts.num_shards, opts.cluster);
  std::printf(
      "simulated step: %.1f ms (compute %.1f, comm busy %.1f, exposed "
      "%.1f); per-GPU memory %s\n",
      step.iteration_s * 1e3, step.compute_s() * 1e3, step.comm_s * 1e3,
      step.exposed_comm_s * 1e3,
      util::human_bytes(static_cast<double>(step.memory.total())).c_str());
  return 0;
}
