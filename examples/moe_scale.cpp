// Mixture-of-experts at M6 scale (§6.5): expert-parallel sharding of a
// 100B-parameter MoE transformer, plus the scaling-law loss projection
// behind Fig. 15.
#include <cstdio>
#include <iostream>

#include "core/tap.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "sim/loss_curve.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace tap;

  Graph model = models::build_moe_transformer(models::m6_100b());
  std::printf("%s: %s params\n", model.name().c_str(),
              util::human_count(static_cast<double>(model.total_params()))
                  .c_str());

  ir::TapGraph tg = ir::lower(model);
  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_cluster(16);  // 128 GPUs
  opts.num_shards = opts.cluster.world();
  core::TapResult r = core::auto_parallel(tg, opts);

  auto moe = tg.find("m6_moe_100b/encoder/block_0/moe");
  auto pats = sharding::patterns_for(tg, moe, opts.num_shards);
  std::printf("MoE layer sharded as: %s (searched %lld candidates in %.0f "
              "ms)\n",
              pats[static_cast<std::size_t>(
                       r.best_plan.choice[static_cast<std::size_t>(moe)])]
                  .name.c_str(),
              static_cast<long long>(r.candidate_plans),
              r.search_seconds * 1e3);

  // Fig. 15 flavor: project training loss for 100B vs 1T parameters.
  sim::LossCurveConfig c100;
  c100.params = 1e11;
  c100.steps = 500;
  sim::LossCurveConfig c1t = c100;
  c1t.params = 1e12;
  auto l100 = sim::simulate_loss_curve(c100);
  auto l1t = sim::simulate_loss_curve(c1t);
  util::Table table({"step", "M6-MoE-100B loss", "M6-MoE-1T loss"});
  for (int s : {0, 100, 200, 300, 400, 499}) {
    table.add_row({std::to_string(s),
                   util::fmt("%.3f", l100[static_cast<std::size_t>(s)]),
                   util::fmt("%.3f", l1t[static_cast<std::size_t>(s)])});
  }
  table.print(std::cout);
  return 0;
}
