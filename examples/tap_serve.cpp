// tap_serve — one shard of the networked plan-serving tier (ISSUE 7):
//
//   tap_serve [--host H] [--port P]            default 127.0.0.1:0
//                                              (port 0 = ephemeral; the
//                                              bound port is printed)
//             [--shards N] [--shard-id K]      consistent-hash layout;
//                                              this process answers only
//                                              the PlanKeys it owns and
//                                              421s the rest
//             [--cache-dir DIR]                plan-cache disk tier
//             [--threads N]                    planner search threads
//             [--request-threads N]            PlannerService workers
//             [--conn-threads N]               HTTP connection workers
//             [--max-pending N]                load-shed bound (0 = off)
//             [--batch-admission F]            deadline-class admission:
//                                              batch traffic (no/relaxed
//                                              deadline) admitted up to
//                                              F * max-pending in-flight
//                                              searches (default 1.0 =
//                                              classless shedding)
//             [--drain-ms MS]                  SIGTERM drain budget
//             [--incremental on|off]           graph-delta warm starts for
//                                              cache-missing searches
//                                              (default on; bit-identical
//                                              results either way)
//             [--access-log FILE]              structured JSON access log,
//                                              one line per sampled
//                                              request ("-" = stdout)
//             [--log-sample N]                 log every N-th sampled
//                                              request (default 1 = all)
//             [--slow-ms MS]                   flight-recorder slow-request
//                                              span-capture threshold
//                                              (default 250)
//             [--flight-capacity N]            flight-recorder ring slots
//                                              (default 512)
//
// Endpoints: POST /plan, GET /explain, GET /metrics, GET /healthz,
// GET /debug/requests?n=K
// (net/plan_handler.h). On SIGTERM/SIGINT the server drains gracefully —
// stops accepting, finishes in-flight requests within the drain budget,
// answers them with Connection: close — then exits 0. A second signal is
// ignored (the drain is already underway).
//
// Startup prints exactly one line CI and scripts can parse:
//   tap_serve: listening on 127.0.0.1:PORT (shard K/N)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <memory>

#include "net/http_server.h"
#include "net/plan_handler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "service/planner_service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  int shards = 1;
  int shard_id = 0;
  std::string cache_dir;
  int threads = 1;
  int request_threads = 0;
  int conn_threads = 8;
  std::int64_t max_pending = 0;
  double batch_admission = 1.0;
  std::int64_t drain_ms = 5000;
  bool incremental = true;
  std::string access_log;
  std::int64_t log_sample = 1;
  std::int64_t slow_ms = 250;
  std::int64_t flight_capacity = 512;
};

bool parse_int(const char* s, std::int64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const char* f = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto as_int = [&](std::int64_t* out) {
      const char* v = value();
      if (v == nullptr || !parse_int(v, out)) {
        std::cerr << "bad or missing value for " << f << "\n";
        return false;
      }
      return true;
    };
    auto as_i32 = [&](int* out) {
      std::int64_t wide = *out;
      if (!as_int(&wide)) return false;
      *out = static_cast<int>(wide);
      return true;
    };
    if (!std::strcmp(f, "--host")) {
      const char* v = value();
      if (v == nullptr) return false;
      a->host = v;
    } else if (!std::strcmp(f, "--port")) {
      if (!as_i32(&a->port)) return false;
    } else if (!std::strcmp(f, "--shards")) {
      if (!as_i32(&a->shards)) return false;
    } else if (!std::strcmp(f, "--shard-id")) {
      if (!as_i32(&a->shard_id)) return false;
    } else if (!std::strcmp(f, "--cache-dir")) {
      const char* v = value();
      if (v == nullptr) return false;
      a->cache_dir = v;
    } else if (!std::strcmp(f, "--threads")) {
      if (!as_i32(&a->threads)) return false;
    } else if (!std::strcmp(f, "--request-threads")) {
      if (!as_i32(&a->request_threads)) return false;
    } else if (!std::strcmp(f, "--conn-threads")) {
      if (!as_i32(&a->conn_threads)) return false;
    } else if (!std::strcmp(f, "--max-pending")) {
      if (!as_int(&a->max_pending)) return false;
    } else if (!std::strcmp(f, "--batch-admission")) {
      const char* v = value();
      char* end = nullptr;
      const double frac = v != nullptr ? std::strtod(v, &end) : 0.0;
      if (v == nullptr || end == v || *end != '\0' || frac <= 0.0 ||
          frac > 1.0) {
        std::cerr << "bad or missing value for --batch-admission "
                     "(want 0 < F <= 1)\n";
        return false;
      }
      a->batch_admission = frac;
    } else if (!std::strcmp(f, "--drain-ms")) {
      if (!as_int(&a->drain_ms)) return false;
    } else if (!std::strcmp(f, "--access-log")) {
      const char* v = value();
      if (v == nullptr) return false;
      a->access_log = v;
    } else if (!std::strcmp(f, "--log-sample")) {
      if (!as_int(&a->log_sample)) return false;
    } else if (!std::strcmp(f, "--slow-ms")) {
      if (!as_int(&a->slow_ms)) return false;
    } else if (!std::strcmp(f, "--flight-capacity")) {
      if (!as_int(&a->flight_capacity)) return false;
    } else if (!std::strcmp(f, "--incremental")) {
      const char* v = value();
      if (v != nullptr && !std::strcmp(v, "on")) {
        a->incremental = true;
      } else if (v != nullptr && !std::strcmp(v, "off")) {
        a->incremental = false;
      } else {
        std::cerr << "bad or missing value for --incremental (want on | "
                     "off)\n";
        return false;
      }
    } else {
      std::cerr << "unknown flag: " << f << "\n";
      return false;
    }
  }
  if (a->shards < 1 || a->shard_id < 0 || a->shard_id >= a->shards) {
    std::cerr << "need 0 <= --shard-id < --shards\n";
    return false;
  }
  if (a->port < 0 || a->port > 65535) {
    std::cerr << "bad --port\n";
    return false;
  }
  if (a->log_sample < 1 || a->slow_ms < 0 || a->flight_capacity < 2) {
    std::cerr << "need --log-sample >= 1, --slow-ms >= 0, "
                 "--flight-capacity >= 2\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tap;
  Args args;
  if (!parse(argc, argv, &args)) return 2;

  service::ServiceOptions sopts;
  sopts.cache.disk_dir = args.cache_dir;
  sopts.request_threads = args.request_threads;
  sopts.max_pending = static_cast<std::size_t>(args.max_pending);
  sopts.batch_admission = args.batch_admission;
  sopts.incremental = args.incremental;
  service::PlannerService svc(sopts);

  std::unique_ptr<obs::AccessLogger> access_log;
  if (!args.access_log.empty()) {
    access_log = std::make_unique<obs::AccessLogger>(
        args.access_log, static_cast<std::uint64_t>(args.log_sample));
    if (!access_log->ok()) {
      std::cerr << "tap_serve: cannot open access log " << args.access_log
                << "\n";
      return 1;
    }
  }

  net::PlanHandlerOptions hopts;
  hopts.num_shards = args.shards;
  hopts.shard_id = args.shard_id;
  hopts.search_threads = args.threads;
  hopts.flight_capacity = static_cast<std::size_t>(args.flight_capacity);
  hopts.slow_request_ms = static_cast<double>(args.slow_ms);
  hopts.access_log = access_log.get();
  net::PlanHandler handler(&svc, hopts);

  net::HttpServerOptions nopts;
  nopts.host = args.host;
  nopts.port = args.port;
  nopts.connection_threads = args.conn_threads;
  nopts.drain_deadline_ms = static_cast<double>(args.drain_ms);
  net::HttpServer server(
      [&handler](const net::HttpMessage& req) { return handler.handle(req); },
      nopts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "tap_serve: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("tap_serve: listening on %s:%d (shard %d/%d)\n",
              args.host.c_str(), server.bound_port(), args.shard_id,
              args.shards);
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("tap_serve: draining (budget %lld ms)\n",
              static_cast<long long>(args.drain_ms));
  std::fflush(stdout);
  server.stop();

  const auto ss = svc.stats();
  const obs::Histogram& lat =
      *obs::registry().histogram("net.http.request_ms");
  std::printf("tap_serve: request latency p50 %.2f ms, p95 %.2f ms, "
              "p99 %.2f ms\n",
              obs::histogram_quantile(lat, 0.50),
              obs::histogram_quantile(lat, 0.95),
              obs::histogram_quantile(lat, 0.99));
  if (access_log != nullptr) {
    std::printf("tap_serve: access log: %llu lines\n",
                static_cast<unsigned long long>(access_log->lines()));
  }
  std::printf("tap_serve: fault tolerance: %llu failover-served, "
              "%llu shed by class\n",
              static_cast<unsigned long long>(
                  obs::registry()
                      .counter("net.plan.failover_served")
                      ->value()),
              static_cast<unsigned long long>(ss.shed_by_class));
  std::printf("tap_serve: served %llu requests (%llu plans, %llu cache "
              "hits, %llu coalesced, %llu incremental, %llu shed); "
              "exiting 0\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(ss.requests),
              static_cast<unsigned long long>(ss.cache_hits),
              static_cast<unsigned long long>(ss.coalesced),
              static_cast<unsigned long long>(ss.incremental_hits),
              static_cast<unsigned long long>(ss.shed));
  return 0;
}
