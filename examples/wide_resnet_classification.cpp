// The e-commerce scenario of Fig. 3a: a ResNet-50 whose 100K-class
// classification layer (205M parameters) dwarfs the 24M feature extractor
// and does not fit comfortably on one accelerator. TAP shards the wide FC
// while keeping the convolutional trunk data parallel.
#include <cstdio>
#include <iostream>

#include "baselines/expert_plans.h"
#include "core/tap.h"
#include "core/visualize.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "sim/simulator.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace tap;

  Graph model = models::build_resnet(models::resnet50(100'000));
  ir::TapGraph tg = ir::lower(model);

  NodeId fc = model.find("resnet50/head/fc/proj");
  std::printf("classifier weight: %s (%s params) vs whole trunk %s params\n",
              model.node(fc).weight->shape.to_string().c_str(),
              util::human_count(
                  static_cast<double>(model.node(fc).weight_params()))
                  .c_str(),
              util::human_count(static_cast<double>(
                                    model.total_params() -
                                    model.node(fc).weight_params()))
                  .c_str());

  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_node();
  opts.num_shards = 8;
  core::TapResult r = core::auto_parallel(tg, opts);

  // How was the classifier sharded?
  auto fc_cluster = tg.find("resnet50/head/fc");
  auto pats = sharding::patterns_for(tg, fc_cluster, opts.num_shards);
  std::printf("TAP shards the classifier as: %s\n",
              pats[static_cast<std::size_t>(
                       r.best_plan.choice[static_cast<std::size_t>(
                           fc_cluster)])]
                  .to_string()
                  .c_str());

  // Compare against pure data parallelism.
  util::Table table({"plan", "comm cost ms", "step ms", "per-GPU memory"});
  auto report = [&](const char* name, const sharding::ShardingPlan& plan) {
    auto routed = sharding::route_plan(tg, plan);
    if (!routed.valid) return;
    auto cost =
        cost::comm_cost(routed, opts.num_shards, opts.cluster, opts.cost);
    auto step =
        sim::simulate_step(tg, routed, opts.num_shards, opts.cluster);
    table.add_row({name, util::fmt("%.2f", cost.total() * 1e3),
                   util::fmt("%.1f", step.iteration_s * 1e3),
                   util::human_bytes(
                       static_cast<double>(step.memory.total()))});
  };
  report("TAP best", r.best_plan);
  report("pure DP",
         baselines::data_parallel_plan(tg, opts.num_shards));
  table.print(std::cout);
  return 0;
}
