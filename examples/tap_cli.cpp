// tap_cli — command-line front-end over the whole library:
//
//   tap_cli [--model t5|bert|gpt3|resnet50|resnet152|moe]
//           [--layers N] [--classes N] [--batch N]
//           [--nodes M] [--gpus N]            cluster S(M, N)
//           [--mesh DPxTP | --mesh auto]      device mesh (default auto)
//           [--threads N]                     search workers (0 = auto)
//           [--pipeline K]                    pipeline stages (§4.8)
//           [--amp] [--recompute] [--zero1]   training techniques (§4.8)
//           [--xla]                           fusion pass (Fig. 8)
//           [--save-plan FILE] [--load-plan FILE]
//           [--cache-dir DIR]                 plan-cache disk tier: serve
//                                             repeat invocations from DIR
//                                             instead of re-searching
//           [--no-cache]                      bypass the PlannerService
//           [--trace FILE]                    chrome://tracing JSON of the
//                                             simulated step only
//           [--profile FILE]                  one chrome://tracing JSON of
//                                             the WHOLE run: planner pass
//                                             spans, cache/service events
//                                             and the simulated step on a
//                                             single timeline
//           [--stats FILE|-]                  obs::dump_json() metrics
//                                             snapshot ("-" = stdout)
//           [--viz]                           print the plan (Fig. 14 style)
//           [--explain]                       print the plan report: top-K
//                                             comm contributors, pruning
//                                             savings, simulated critical
//                                             path (report/report.h)
//           [--diff-baseline NAME]            add a plan diff vs an expert
//                                             baseline (dp | megatron |
//                                             mha | ffn) to the report
//           [--report FILE]                   write the report JSON to FILE
//                                             (implies --explain)
//           [--topk N]                        contributors before the
//                                             "(other)" rollup (default 10)
//           [--deadline-ms N]                 latency budget: return the
//                                             best plan found within N ms
//                                             (anytime / fallback, see the
//                                             provenance line)
//           [--max-checkpoints N]             deterministic anytime cutoff:
//                                             stop the search after N
//                                             checkpoints (reproducible at
//                                             any --threads)
//           [--incremental on|off]            graph-delta warm starts for
//                                             cache-missing service
//                                             searches (default on; the
//                                             result is bit-identical
//                                             either way — off just
//                                             forces a cold search)
//           [--fault SPEC]                    install a fault injector,
//                                             e.g. cache.disk.read=throw:0.5
//                                             (seed via TAP_FAULT_SEED)
//           [--serve-url URL[,URL...]]        plan over HTTP instead of
//                                             in-process: route this
//                                             request through net::PlanClient
//                                             to the tap_serve shard owning
//                                             its PlanKey (one slot per
//                                             shard id, "|"-separated
//                                             replica URLs per slot;
//                                             --explain fetches the
//                                             server-side report).
//                                             "@FILE" loads the slots from
//                                             a fleet manifest written by
//                                             sbin/start-shards.sh
//           [--plan-json FILE|-]              write the canonical plan-
//                                             response JSON (service/wire.h).
//                                             Offline it is built in
//                                             process; with --serve-url it
//                                             is the verbatim server body —
//                                             the two are byte-identical,
//                                             which CI asserts with cmp.
//
// With no arguments: plans T5 with 8+8 layers for 2x8 V100s with an
// automatic mesh sweep and prints the summary.
//
// Exit codes: 0 success; 2 usage error (unknown flag/model, malformed
// value, invalid --fault spec); 1 runtime failure (unreadable input,
// unwritable output, plan does not route).
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/pipeline.h"
#include "core/serialize.h"
#include "cost/comm_batch.h"
#include "core/tap.h"
#include "core/visualize.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "baselines/expert_plans.h"
#include "net/plan_client.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "report/report.h"
#include "service/planner_service.h"
#include "service/wire.h"
#include "sim/simulator.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

struct Args {
  std::string model = "t5";
  int layers = 8;
  std::int64_t classes = 1000;
  std::int64_t batch = 16;
  int nodes = 2;
  int gpus = 8;
  std::string mesh = "auto";
  int threads = 1;
  int pipeline = 1;
  bool amp = false, recompute = false, zero1 = false, xla = false, viz = false;
  bool no_cache = false, explain = false;
  bool incremental = true;
  int topk = 10;
  std::int64_t deadline_ms = 0;
  std::int64_t max_checkpoints = -1;
  std::string fault_spec;
  std::string save_plan, load_plan, trace_path, cache_dir;
  std::string profile_path, stats_path, report_path, diff_baseline;
  std::string serve_url, plan_json_path;
};

/// Strict base-10 parse: the whole token must be a number (no atoi
/// half-parses — "8x" or "fast" is a usage error, not an 8 or a 0).
bool parse_i64(const char* s, std::int64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool known_model(const std::string& m) { return tap::service::known_model(m); }

bool parse(int argc, char** argv, Args* a) {
  bool missing = false;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      missing = true;
      return nullptr;
    }
    return argv[++i];
  };
  bool bad_number = false;
  auto i64 = [&](const char* flag, const char* v, std::int64_t* out) {
    if (v == nullptr) return;
    if (!parse_i64(v, out)) {
      std::cerr << "bad value for " << flag << ": '" << v << "'\n";
      bad_number = true;
    }
  };
  auto i32 = [&](const char* flag, const char* v, int* out) {
    std::int64_t wide = *out;
    i64(flag, v, &wide);
    *out = static_cast<int>(wide);
  };
  for (int i = 1; i < argc; ++i) {
    const char* f = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(f, "--model") && (v = need_value(i))) {
      a->model = v;
    } else if (!std::strcmp(f, "--layers")) {
      i32(f, need_value(i), &a->layers);
    } else if (!std::strcmp(f, "--classes")) {
      i64(f, need_value(i), &a->classes);
    } else if (!std::strcmp(f, "--batch")) {
      i64(f, need_value(i), &a->batch);
    } else if (!std::strcmp(f, "--nodes")) {
      i32(f, need_value(i), &a->nodes);
    } else if (!std::strcmp(f, "--gpus")) {
      i32(f, need_value(i), &a->gpus);
    } else if (!std::strcmp(f, "--mesh") && (v = need_value(i))) {
      a->mesh = v;
    } else if (!std::strcmp(f, "--threads")) {
      i32(f, need_value(i), &a->threads);
    } else if (!std::strcmp(f, "--pipeline")) {
      i32(f, need_value(i), &a->pipeline);
    } else if (!std::strcmp(f, "--amp")) {
      a->amp = true;
    } else if (!std::strcmp(f, "--recompute")) {
      a->recompute = true;
    } else if (!std::strcmp(f, "--zero1")) {
      a->zero1 = true;
    } else if (!std::strcmp(f, "--xla")) {
      a->xla = true;
    } else if (!std::strcmp(f, "--viz")) {
      a->viz = true;
    } else if (!std::strcmp(f, "--save-plan") && (v = need_value(i))) {
      a->save_plan = v;
    } else if (!std::strcmp(f, "--load-plan") && (v = need_value(i))) {
      a->load_plan = v;
    } else if (!std::strcmp(f, "--cache-dir") && (v = need_value(i))) {
      a->cache_dir = v;
    } else if (!std::strcmp(f, "--no-cache")) {
      a->no_cache = true;
    } else if (!std::strcmp(f, "--trace") && (v = need_value(i))) {
      a->trace_path = v;
    } else if (!std::strcmp(f, "--profile") && (v = need_value(i))) {
      a->profile_path = v;
    } else if (!std::strcmp(f, "--stats") && (v = need_value(i))) {
      a->stats_path = v;
    } else if (!std::strcmp(f, "--explain")) {
      a->explain = true;
    } else if (!std::strcmp(f, "--diff-baseline") && (v = need_value(i))) {
      a->diff_baseline = v;
      a->explain = true;
    } else if (!std::strcmp(f, "--report") && (v = need_value(i))) {
      a->report_path = v;
      a->explain = true;
    } else if (!std::strcmp(f, "--topk")) {
      i32(f, need_value(i), &a->topk);
    } else if (!std::strcmp(f, "--deadline-ms")) {
      i64(f, need_value(i), &a->deadline_ms);
    } else if (!std::strcmp(f, "--max-checkpoints")) {
      i64(f, need_value(i), &a->max_checkpoints);
    } else if (!std::strcmp(f, "--incremental") && (v = need_value(i))) {
      if (!std::strcmp(v, "on")) {
        a->incremental = true;
      } else if (!std::strcmp(v, "off")) {
        a->incremental = false;
      } else {
        std::cerr << "bad value for --incremental: '" << v
                  << "' (want on | off)\n";
        return false;
      }
    } else if (!std::strcmp(f, "--fault") && (v = need_value(i))) {
      a->fault_spec = v;
    } else if (!std::strcmp(f, "--serve-url") && (v = need_value(i))) {
      a->serve_url = v;
    } else if (!std::strcmp(f, "--plan-json") && (v = need_value(i))) {
      a->plan_json_path = v;
    } else if (!missing) {
      std::cerr << "unknown flag: " << f << "\n";
      return false;
    }
    if (missing) return false;
  }
  if (bad_number) return false;
  if (!known_model(a->model)) {
    std::cerr << "unknown model '" << a->model
              << "' (want t5 | bert | gpt3 | resnet50 | resnet152 | moe)\n";
    return false;
  }
  if (a->mesh != "auto") {
    int dp = 1, tp = 1;
    char trailing = '\0';
    if (std::sscanf(a->mesh.c_str(), "%dx%d%c", &dp, &tp, &trailing) != 2 ||
        dp < 1 || tp < 1) {
      std::cerr << "bad --mesh '" << a->mesh << "' (want DPxTP or auto)\n";
      return false;
    }
  }
  if (!a->diff_baseline.empty() && a->diff_baseline != "dp" &&
      a->diff_baseline != "megatron" && a->diff_baseline != "mha" &&
      a->diff_baseline != "ffn") {
    std::cerr << "unknown --diff-baseline '" << a->diff_baseline
              << "' (want dp | megatron | mha | ffn)\n";
    return false;
  }
  return true;
}

/// Writes `content` to `path`, reporting failures (unwritable directory,
/// disk full at flush) on stderr. tap_cli exits 1 when this fails — a
/// silently empty --report/--save-plan file is worse than an error.
bool write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot write " << what << " to " << path << "\n";
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    std::cerr << "failed while writing " << what << " to " << path << "\n";
    return false;
  }
  return true;
}

/// The wire ModelSpec for these flags: the single source of truth for
/// "which planning problem is this" shared with the serving tier, so the
/// CLI and a tap_serve shard land on the same PlanKey by construction.
tap::service::ModelSpec spec_of(const Args& a) {
  tap::service::ModelSpec spec;
  spec.model = a.model;
  spec.layers = a.layers;
  spec.classes = a.classes;
  spec.batch = a.batch;
  spec.nodes = a.nodes;
  spec.gpus = a.gpus;
  spec.deadline_ms = a.deadline_ms;
  if (a.mesh != "auto") {
    // parse() validated the DPxTP shape already.
    std::sscanf(a.mesh.c_str(), "%dx%d", &spec.dp, &spec.tp);
  }
  return spec;
}

tap::Graph build_model(const Args& a) {
  return tap::service::build_spec_model(spec_of(a));
}

std::vector<std::string> split_urls(const std::string& csv) {
  std::vector<std::string> urls;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) urls.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return urls;
}

/// --serve-url accepts either a comma-separated shard-slot list (each
/// slot optionally "url|url|..." replicas) or "@FILE", a fleet manifest
/// written by sbin/start-shards.sh: one line per shard slot in shard-id
/// order, '#' comments and blank lines ignored. Throws std::runtime_error
/// on an unreadable manifest (the serve paths already report-and-exit on
/// exceptions).
std::vector<std::string> load_urls(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return split_urls(arg);
  const std::string path = arg.substr(1);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read fleet manifest " + path);
  std::vector<std::string> urls;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    urls.push_back(line.substr(first, last - first + 1));
  }
  if (urls.empty())
    throw std::runtime_error("fleet manifest " + path + " lists no shards");
  return urls;
}

/// "/explain?model=t5&layers=2&..." for the owning shard.
std::string explain_target(const tap::service::ModelSpec& spec) {
  std::string t = "/explain?model=" + spec.model;
  t += "&layers=" + std::to_string(spec.layers);
  t += "&classes=" + std::to_string(spec.classes);
  t += "&batch=" + std::to_string(spec.batch);
  t += "&nodes=" + std::to_string(spec.nodes);
  t += "&gpus=" + std::to_string(spec.gpus);
  if (!spec.sweep())
    t += "&mesh=" + std::to_string(spec.dp) + "x" + std::to_string(spec.tp);
  if (spec.deadline_ms > 0)
    t += "&deadline_ms=" + std::to_string(spec.deadline_ms);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tap;
  Args args;
  if (!parse(argc, argv, &args)) return 2;

  // --fault: install the injector before any planning so every site in
  // the run is covered. Seed comes from TAP_FAULT_SEED, matching the
  // env-variable install path.
  std::unique_ptr<util::ScopedFaultInjector> fault;
  if (!args.fault_spec.empty()) {
    std::uint64_t seed = 0;
    if (const char* s = std::getenv("TAP_FAULT_SEED")) {
      std::int64_t parsed = 0;
      if (parse_i64(s, &parsed)) seed = static_cast<std::uint64_t>(parsed);
    }
    try {
      fault = std::make_unique<util::ScopedFaultInjector>(args.fault_spec,
                                                          seed);
    } catch (const std::exception& e) {
      std::cerr << "invalid --fault spec: " << e.what() << "\n";
      return 2;
    }
  }

  // --profile: activate the observability session before any planning so
  // planner pass spans, cache/service events and the simulated step all
  // record onto one timeline.
  obs::TraceSession session;
  if (!args.profile_path.empty()) session.start();

  Graph model = build_model(args);
  ir::TapGraph tg = ir::lower(model);
  std::printf("model %s: %s params, %zu ops -> %zu GraphNodes\n",
              model.name().c_str(),
              util::human_count(static_cast<double>(model.total_params()))
                  .c_str(),
              model.num_nodes(), tg.num_nodes());

  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_cluster(args.nodes);
  opts.cluster.gpus_per_node = args.gpus;
  opts.threads = args.threads;
  opts.deadline_ms = args.deadline_ms;
  opts.max_checkpoints = args.max_checkpoints;

  // --serve-url: plan over HTTP. The CLI builds the same model and
  // options locally (that is how it knows the PlanKey and how it can
  // route/simulate the answer), but the search itself runs on the
  // tap_serve shard that owns the key.
  std::string served_plan_body;
  const service::ModelSpec spec = spec_of(args);
  // The key a tap_serve shard would compute for this spec: built from
  // options_for_spec (not the CLI's local opts) so fixed-mesh flags land
  // in the fingerprint exactly the way the server spells them.
  const service::PlanKey wire_key = service::make_plan_key(
      tg, service::options_for_spec(spec, args.threads), spec.sweep());

  core::TapResult result;
  if (!args.serve_url.empty()) {
    if (args.pipeline > 1 || !args.load_plan.empty()) {
      std::cerr << "--serve-url does not combine with --pipeline or "
                   "--load-plan\n";
      return 2;
    }
    const service::PlanKey& key = wire_key;
    try {
      // Root the request trace here: the PlanClient forwards this context
      // as a traceparent header, the shard echoes it back, and (with
      // --profile) the client span, the shard's flight record, and the
      // planner pass spans all correlate under one trace id.
      const obs::RequestContext rctx = obs::generate_request_context();
      obs::ScopedRequestContext rscope(rctx);
      net::PlanClient client(load_urls(args.serve_url));
      net::HttpMessage resp =
          client.post_plan(key, service::model_spec_to_json(spec));
      std::printf("trace: %s\n", obs::format_traceparent(rctx).c_str());
      if (resp.status != 200) {
        std::cerr << "server answered " << resp.status << ": " << resp.body
                  << "\n";
        return 1;
      }
      served_plan_body = resp.body;
      const util::JsonValue doc = util::JsonValue::parse(resp.body);
      result.best_plan =
          core::plan_from_json(tg, doc.at("plan").dump());
      const std::string source = doc.at("provenance").as_string();
      result.provenance.source = source == "anytime"
                                     ? core::PlanSource::kAnytime
                                 : source == "fallback"
                                     ? core::PlanSource::kFallback
                                     : core::PlanSource::kComplete;
      result.candidate_plans =
          doc.at("stats").at("candidate_plans").as_int();
      result.valid_plans = doc.at("stats").at("valid_plans").as_int();
      std::printf("served: shard %d of %d (%s), key %s\n",
                  client.shard_for(key), client.num_shards(),
                  client.url_of(client.shard_for(key)).c_str(),
                  key.to_hex().c_str());
    } catch (const std::exception& e) {
      std::cerr << "serve request failed: " << e.what() << "\n";
      return 1;
    }
    result.routed = sharding::route_plan(tg, result.best_plan);
    if (!result.routed.valid) {
      std::cerr << "served plan does not route: " << result.routed.error
                << "\n";
      return 1;
    }
    result.cost = cost::comm_cost(result.routed, result.best_plan.num_shards,
                                  opts.cluster);
  } else if (!args.load_plan.empty()) {
    std::ifstream in(args.load_plan);
    if (!in) {
      std::cerr << "cannot read " << args.load_plan << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      result.best_plan = core::plan_from_json(tg, buf.str());
    } catch (const std::exception& e) {
      std::cerr << "cannot parse plan " << args.load_plan << ": " << e.what()
                << "\n";
      return 1;
    }
    result.routed = sharding::route_plan(tg, result.best_plan);
    if (!result.routed.valid) {
      std::cerr << "loaded plan does not route: " << result.routed.error
                << "\n";
      return 1;
    }
    result.cost = cost::comm_cost(result.routed,
                                  result.best_plan.num_shards, opts.cluster);
    std::printf("loaded plan from %s (mesh %s)\n", args.load_plan.c_str(),
                result.best_plan.mesh().to_string().c_str());
  } else if (args.pipeline > 1) {
    opts.num_shards = opts.cluster.world();
    core::PipelineOptions popts;
    popts.stages = args.pipeline;
    auto piped = core::auto_parallel_pipelined(tg, opts, popts);
    result = std::move(piped.inner);
    std::printf("pipeline: %d stages, bottleneck %.0f%%, bubble %.0f%%\n",
                piped.stages, piped.bottleneck_fraction * 100.0,
                piped.bubble_fraction * 100.0);
  } else {
    const bool sweep = args.mesh == "auto";
    if (!sweep) {
      int dp = 1, tp = 1;
      if (std::sscanf(args.mesh.c_str(), "%dx%d", &dp, &tp) != 2) {
        std::cerr << "bad --mesh (want DPxTP or auto)\n";
        return 2;
      }
      opts.dp_replicas = dp;
      opts.num_shards = tp;
    }
    if ((!args.cache_dir.empty() || !args.profile_path.empty() ||
         args.deadline_ms > 0) &&
        !args.no_cache) {
      // Route through the PlannerService so a repeat invocation for the
      // same architecture + cluster is served from --cache-dir (the result
      // is bit-identical to a direct search by construction). --profile
      // also takes this path so the cache/service events show up on the
      // exported timeline, and --deadline-ms so an expired budget degrades
      // to the Megatron fallback instead of an error.
      service::ServiceOptions sopts;
      sopts.cache.disk_dir = args.cache_dir;
      sopts.incremental = args.incremental;
      service::PlannerService svc(sopts);
      result = svc.plan({&tg, opts, sweep});
      const auto cs = svc.cache_stats();
      const auto ss = svc.stats();
      std::printf("cache: %s (%s), key %s, families reused %llu\n",
                  cs.memory_hits + cs.disk_hits > 0 ? "hit" : "miss",
                  cs.disk_hits > 0      ? "disk"
                  : cs.memory_hits > 0  ? "memory"
                  : cs.disk_rejects > 0 ? "stale file rejected"
                                        : "searched",
                  svc.key_for({&tg, opts, sweep}).to_hex().c_str(),
                  static_cast<unsigned long long>(ss.family_hits));
    } else if (sweep) {
      result = core::auto_parallel_best_mesh(tg, opts);
    } else {
      result = core::auto_parallel(tg, opts);
    }
  }

  std::printf("plan: mesh %s, %lld candidates examined in %.1f ms, comm "
              "cost %.2f ms/step\n",
              result.best_plan.mesh().to_string().c_str(),
              static_cast<long long>(result.candidate_plans),
              result.search_seconds * 1e3, result.cost.total() * 1e3);
  {
    const cost::CostKernel k = cost::active_cost_kernel();
    std::printf("cost kernel: %s (width %d)\n", cost::cost_kernel_name(k),
                cost::cost_kernel_width(k));
  }
  if (!result.provenance.complete()) {
    const core::PlanProvenance& p = result.provenance;
    std::printf("provenance: %s (%lld/%lld families, %lld/%lld meshes%s%s%s)\n",
                core::plan_source_name(p.source),
                static_cast<long long>(p.families_searched),
                static_cast<long long>(p.families_total),
                static_cast<long long>(p.meshes_searched),
                static_cast<long long>(p.meshes_total),
                p.deadline_hit ? ", deadline hit" : "",
                p.fallback_reason.empty() ? "" : ", reason: ",
                p.fallback_reason.c_str());
  } else if (result.provenance.incremental()) {
    const core::PlanProvenance& p = result.provenance;
    std::printf("provenance: %s (%lld/%lld families pinned from the "
                "nearest cached plan)\n",
                core::plan_provenance_label(p),
                static_cast<long long>(p.families_pinned),
                static_cast<long long>(p.families_total));
  }

  if (args.viz) {
    std::cout << core::visualize_plan(tg, result.best_plan, result.pruning);
  }

  sim::SimOptions sopts;
  sopts.xla_fusion = args.xla;
  sopts.training.amp = args.amp;
  sopts.training.recompute = args.recompute;
  sopts.training.zero1 = args.zero1;
  sim::Trace trace;
  if (!args.trace_path.empty() || !args.profile_path.empty())
    sopts.trace = &trace;

  auto step = sim::simulate_step(tg, result.routed,
                                 result.best_plan.num_shards, opts.cluster,
                                 sopts);
  std::printf("simulated: %.1f ms/iter (compute %.1f, comm %.1f busy / "
              "%.1f exposed), %s per GPU\n",
              step.iteration_s * 1e3, step.compute_s() * 1e3,
              step.comm_s * 1e3, step.exposed_comm_s * 1e3,
              util::human_bytes(static_cast<double>(step.memory.total()))
                  .c_str());

  if (args.explain && !args.serve_url.empty()) {
    // The report is the server's: same bytes any client would see. The
    // baseline diff is a local-analysis feature and is not applied here.
    if (!args.diff_baseline.empty())
      std::cerr << "--diff-baseline is ignored with --serve-url\n";
    try {
      net::PlanClient client(load_urls(args.serve_url));
      net::HttpMessage resp =
          client.get(client.shard_for(wire_key), explain_target(spec));
      if (resp.status != 200) {
        std::cerr << "explain failed with " << resp.status << ": "
                  << resp.body << "\n";
        return 1;
      }
      report::PlanReport report = report::from_json(resp.body);
      std::cout << report::to_text(report);
      if (!args.report_path.empty()) {
        if (!write_file(args.report_path, resp.body + "\n", "report"))
          return 1;
        std::printf("report written to %s\n", args.report_path.c_str());
      }
    } catch (const std::exception& e) {
      std::cerr << "explain request failed: " << e.what() << "\n";
      return 1;
    }
  } else if (args.explain) {
    report::ReportOptions ropts;
    ropts.top_k = args.topk;
    ropts.sim = sopts;
    ropts.sim.trace = nullptr;  // the report records its own trace
    ropts.model_name = model.name();
    report::PlanReport report = report::build_report(tg, result, opts, ropts);
    if (!args.diff_baseline.empty()) {
      std::string name;
      if (args.diff_baseline == "dp") name = "DP";
      if (args.diff_baseline == "megatron") name = "Megatron";
      if (args.diff_baseline == "mha") name = "MHA";
      if (args.diff_baseline == "ffn") name = "FFN";
      // parse() rejected anything else.
      auto theirs =
          baselines::named_expert_plan(name, tg, opts.cluster.world());
      if (!sharding::route_plan(tg, theirs).valid) {
        std::cerr << "baseline " << name
                  << " does not route on this model, skipping diff\n";
      } else {
        report::attach_baseline_diff(&report, tg, result, theirs, name,
                                     opts);
      }
    }
    std::cout << report::to_text(report);
    if (!args.report_path.empty()) {
      if (!write_file(args.report_path, report::to_json(report) + "\n",
                      "report"))
        return 1;
      std::printf("report written to %s\n", args.report_path.c_str());
    }
  }

  if (!args.plan_json_path.empty()) {
    // Canonical plan-response bytes (service/wire.h). In serve mode this
    // is the verbatim server body; offline it is built in process — the
    // determinism contract says the two are identical, and the serve-smoke
    // CI job cmp's them.
    if (!result.provenance.complete()) {
      // A deadlined run can reach here with an anytime/fallback plan; the
      // emitted bytes carry the provenance field, but scripts that only
      // grab the plan must not mistake a degraded plan for a complete one.
      std::cerr << "warning: plan provenance is "
                << core::plan_source_name(result.provenance.source)
                << ", not complete — the --plan-json bytes describe a "
                   "degraded plan\n";
    }
    const std::string bytes =
        !served_plan_body.empty()
            ? served_plan_body
            : service::plan_response_json(tg, wire_key, result);
    if (args.plan_json_path == "-") {
      std::cout << bytes << "\n";
    } else {
      if (!write_file(args.plan_json_path, bytes, "plan json")) return 1;
      std::printf("plan response written to %s\n",
                  args.plan_json_path.c_str());
    }
  }
  if (!args.save_plan.empty()) {
    if (!write_file(args.save_plan, core::plan_to_json(tg, result.best_plan),
                    "plan"))
      return 1;
    std::printf("plan saved to %s\n", args.save_plan.c_str());
  }
  if (!args.trace_path.empty()) {
    if (!write_file(args.trace_path, trace.to_chrome_json(), "trace"))
      return 1;
    std::printf("trace written to %s (open in chrome://tracing)\n",
                args.trace_path.c_str());
  }
  if (!args.profile_path.empty()) {
    // Re-base the simulated step onto the session timeline (pid 1), then
    // export planner + service + simulator as one Chrome trace.
    trace.append_to(session);
    session.stop();
    if (!write_file(args.profile_path, session.to_chrome_json(), "profile"))
      return 1;
    std::printf("profile written to %s (%zu events; open in "
                "chrome://tracing or https://ui.perfetto.dev)\n",
                args.profile_path.c_str(), session.events().size());
  }
  if (!args.stats_path.empty()) {
    if (args.stats_path == "-") {
      std::cout << obs::dump_json() << "\n";
    } else {
      if (!write_file(args.stats_path, obs::dump_json() + "\n", "stats"))
        return 1;
      std::printf("stats written to %s\n", args.stats_path.c_str());
    }
  }
  return 0;
}
