// Bring-your-own-model: TAP needs only a dataflow graph with name scopes —
// no annotations, no per-layer hints (the "Example 1" workflow of §4.1).
// This example hand-builds a two-tower recommendation model with a huge
// item-embedding table, lets TAP plan it, and verifies the plan numerically
// against serial execution with the built-in runtime.
#include <cmath>
#include <cstdio>

#include <algorithm>

#include "core/tap.h"
#include "core/visualize.h"
#include "graph/graph_builder.h"
#include "ir/lowering.h"
#include "rewrite/rewrite.h"
#include "runtime/executor.h"
#include "runtime/spmd_interpreter.h"

int main() {
  using namespace tap;

  // --- the user's model, built with GraphBuilder ---------------------------
  GraphBuilder b("rec");
  auto root = b.scope("rec");
  NodeId user_ids = b.placeholder("inputs/user_ids", {8, 16}, DType::kI32);
  NodeId item_ids = b.placeholder("inputs/item_ids", {8, 16}, DType::kI32);

  NodeId user_vec, item_vec;
  {
    auto tower = b.scope("user_tower");
    NodeId e = b.embedding("embed", user_ids, 4096, 64);
    NodeId h = b.gelu("act", b.matmul("dense_0", e, 128));
    for (int i = 1; i <= 3; ++i) {
      auto blk = b.scope("layer_" + std::to_string(i));
      h = b.gelu("act", b.matmul("dense", h, 128));
    }
    user_vec = b.op("pool", OpKind::kReduceMean, {h},
                    {TensorShape{8, 128}, DType::kF32});
  }
  {
    auto tower = b.scope("item_tower");
    // The large side: 1M items.
    NodeId e = b.embedding("embed", item_ids, 1'048'576, 64);
    NodeId h = b.gelu("act", b.matmul("dense_0", e, 128));
    for (int i = 1; i <= 3; ++i) {
      auto blk = b.scope("layer_" + std::to_string(i));
      h = b.gelu("act", b.matmul("dense", h, 128));
    }
    item_vec = b.op("pool", OpKind::kReduceMean, {h},
                    {TensorShape{8, 128}, DType::kF32});
  }
  {
    auto head = b.scope("head");
    NodeId it = b.transpose("item_t", item_vec, {1, 0});
    NodeId scores = b.op("scores", OpKind::kMatMul, {user_vec, it},
                         {TensorShape{8, 8}, DType::kF32});
    NodeId labels = b.placeholder("labels", {8, 8});
    b.cross_entropy("loss", scores, labels);
  }
  b.add_training_auxiliaries();
  Graph model = b.take();

  // --- plan it ---------------------------------------------------------------
  ir::TapGraph tg = ir::lower(model);
  core::TapOptions opts;
  opts.num_shards = 8;
  core::TapResult r = core::auto_parallel(tg, opts);
  std::printf("searched %lld candidates, comm cost %.3f ms\n",
              static_cast<long long>(r.candidate_plans),
              r.cost.total() * 1e3);
  std::printf("%s", core::visualize_plan(tg, r.best_plan, r.pruning).c_str());

  // --- verify p(X) = G(X) numerically ----------------------------------------
  runtime::Executor serial(model);
  auto feeds = serial.make_feeds();
  auto want = serial.run(feeds);
  runtime::ShardedExecutor sharded(model, tg, r.routed, opts.num_shards);
  auto got = sharded.run(feeds);
  float worst = 0.0f;
  for (const auto& [name, t] : want) {
    worst = std::max(worst,
                     runtime::Tensor::max_abs_diff(t, got.at(name)));
  }
  std::printf("numeric equivalence: max |serial - sharded| = %.2e over %zu "
              "tensors\n",
              static_cast<double>(worst), want.size());

  // --- and run the actual per-device SPMD program ----------------------------
  auto rw = rewrite::rewrite_graph(model, tg, r.routed, opts.num_shards,
                                   /*restore_aux=*/false);
  runtime::SpmdInterpreter interp(rw.parallel, opts.num_shards);
  auto device_outs = interp.run(feeds);
  float spmd_loss =
      runtime::SpmdInterpreter::mean_scalar(device_outs, "rec/head/loss");
  float serial_loss = want.at("rec/head/loss")[0];
  std::printf("SPMD execution on %d devices: loss %.6f vs serial %.6f\n",
              opts.num_shards, static_cast<double>(spmd_loss),
              static_cast<double>(serial_loss));
  return (worst < 1e-3f && std::fabs(spmd_loss - serial_loss) < 1e-3f) ? 0
                                                                       : 1;
}
