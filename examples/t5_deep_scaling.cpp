// Depth-scaling study (the Fig. 9 scenario as an API walkthrough): grow a
// dense transformer from 8 to 48 layers and watch TAP's search work stay
// flat while the model grows — the shared-subgraph folding at work.
#include <cstdio>
#include <iostream>

#include "core/tap.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace tap;
  util::Table table({"layers", "params", "GraphNodes", "unique subgraphs",
                     "candidates", "search ms", "best plan comm ms"});

  for (int layers : {8, 16, 32, 48}) {
    Graph model = models::build_transformer(models::t5_with_layers(layers));
    ir::TapGraph tg = ir::lower(model);

    core::TapOptions opts;
    opts.cluster = cost::ClusterSpec::v100_cluster(2);
    opts.num_shards = opts.cluster.world();
    core::TapResult r = core::auto_parallel(tg, opts);

    table.add_row(
        {std::to_string(layers),
         util::human_count(static_cast<double>(model.total_params())),
         std::to_string(tg.num_nodes()),
         std::to_string(r.pruning.unique_subgraphs()),
         std::to_string(r.candidate_plans),
         util::fmt("%.1f", r.search_seconds * 1e3),
         util::fmt("%.2f", r.cost.total() * 1e3)});
  }
  table.print(std::cout);
  std::printf("\nNote: candidates and unique subgraphs are flat in depth — "
              "TAP searches one transformer block, not the whole stack.\n");
  return 0;
}
