file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tap_vs_megatron.dir/bench_fig13_tap_vs_megatron.cpp.o"
  "CMakeFiles/bench_fig13_tap_vs_megatron.dir/bench_fig13_tap_vs_megatron.cpp.o.d"
  "bench_fig13_tap_vs_megatron"
  "bench_fig13_tap_vs_megatron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tap_vs_megatron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
