# Empty dependencies file for bench_fig13_tap_vs_megatron.
# This may be replaced when dependencies are built.
