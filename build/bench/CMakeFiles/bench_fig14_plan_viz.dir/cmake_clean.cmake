file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_plan_viz.dir/bench_fig14_plan_viz.cpp.o"
  "CMakeFiles/bench_fig14_plan_viz.dir/bench_fig14_plan_viz.cpp.o.d"
  "bench_fig14_plan_viz"
  "bench_fig14_plan_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_plan_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
