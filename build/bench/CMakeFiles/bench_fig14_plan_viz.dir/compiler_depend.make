# Empty compiler generated dependencies file for bench_fig14_plan_viz.
# This may be replaced when dependencies are built.
