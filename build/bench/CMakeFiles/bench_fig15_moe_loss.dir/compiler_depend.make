# Empty compiler generated dependencies file for bench_fig15_moe_loss.
# This may be replaced when dependencies are built.
