file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_moe_loss.dir/bench_fig15_moe_loss.cpp.o"
  "CMakeFiles/bench_fig15_moe_loss.dir/bench_fig15_moe_loss.cpp.o.d"
  "bench_fig15_moe_loss"
  "bench_fig15_moe_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_moe_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
