# Empty compiler generated dependencies file for bench_ablation_grad_packing.
# This may be replaced when dependencies are built.
