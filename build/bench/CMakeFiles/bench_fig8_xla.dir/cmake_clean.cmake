file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_xla.dir/bench_fig8_xla.cpp.o"
  "CMakeFiles/bench_fig8_xla.dir/bench_fig8_xla.cpp.o.d"
  "bench_fig8_xla"
  "bench_fig8_xla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_xla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
