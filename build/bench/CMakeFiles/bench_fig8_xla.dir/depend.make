# Empty dependencies file for bench_fig8_xla.
# This may be replaced when dependencies are built.
