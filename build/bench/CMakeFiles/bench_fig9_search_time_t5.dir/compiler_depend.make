# Empty compiler generated dependencies file for bench_fig9_search_time_t5.
# This may be replaced when dependencies are built.
