file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_search_time_t5.dir/bench_fig9_search_time_t5.cpp.o"
  "CMakeFiles/bench_fig9_search_time_t5.dir/bench_fig9_search_time_t5.cpp.o.d"
  "bench_fig9_search_time_t5"
  "bench_fig9_search_time_t5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_search_time_t5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
