file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_shared_subgraphs.dir/bench_table1_shared_subgraphs.cpp.o"
  "CMakeFiles/bench_table1_shared_subgraphs.dir/bench_table1_shared_subgraphs.cpp.o.d"
  "bench_table1_shared_subgraphs"
  "bench_table1_shared_subgraphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_shared_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
