# Empty compiler generated dependencies file for bench_table1_shared_subgraphs.
# This may be replaced when dependencies are built.
