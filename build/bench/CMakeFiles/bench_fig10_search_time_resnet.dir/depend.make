# Empty dependencies file for bench_fig10_search_time_resnet.
# This may be replaced when dependencies are built.
