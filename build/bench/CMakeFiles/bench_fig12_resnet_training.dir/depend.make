# Empty dependencies file for bench_fig12_resnet_training.
# This may be replaced when dependencies are built.
