file(REMOVE_RECURSE
  "libtap.a"
)
