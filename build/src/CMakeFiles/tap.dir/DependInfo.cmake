
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alpa_like.cpp" "src/CMakeFiles/tap.dir/baselines/alpa_like.cpp.o" "gcc" "src/CMakeFiles/tap.dir/baselines/alpa_like.cpp.o.d"
  "/root/repo/src/baselines/expert_plans.cpp" "src/CMakeFiles/tap.dir/baselines/expert_plans.cpp.o" "gcc" "src/CMakeFiles/tap.dir/baselines/expert_plans.cpp.o.d"
  "/root/repo/src/baselines/flexflow_like.cpp" "src/CMakeFiles/tap.dir/baselines/flexflow_like.cpp.o" "gcc" "src/CMakeFiles/tap.dir/baselines/flexflow_like.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/tap.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/tap.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/tap.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/tap.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/tap.cpp" "src/CMakeFiles/tap.dir/core/tap.cpp.o" "gcc" "src/CMakeFiles/tap.dir/core/tap.cpp.o.d"
  "/root/repo/src/core/visualize.cpp" "src/CMakeFiles/tap.dir/core/visualize.cpp.o" "gcc" "src/CMakeFiles/tap.dir/core/visualize.cpp.o.d"
  "/root/repo/src/cost/collectives.cpp" "src/CMakeFiles/tap.dir/cost/collectives.cpp.o" "gcc" "src/CMakeFiles/tap.dir/cost/collectives.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/tap.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/tap.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/cost/flops.cpp" "src/CMakeFiles/tap.dir/cost/flops.cpp.o" "gcc" "src/CMakeFiles/tap.dir/cost/flops.cpp.o.d"
  "/root/repo/src/fusion/fusion.cpp" "src/CMakeFiles/tap.dir/fusion/fusion.cpp.o" "gcc" "src/CMakeFiles/tap.dir/fusion/fusion.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/tap.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/tap.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/graph_builder.cpp" "src/CMakeFiles/tap.dir/graph/graph_builder.cpp.o" "gcc" "src/CMakeFiles/tap.dir/graph/graph_builder.cpp.o.d"
  "/root/repo/src/graph/op_kind.cpp" "src/CMakeFiles/tap.dir/graph/op_kind.cpp.o" "gcc" "src/CMakeFiles/tap.dir/graph/op_kind.cpp.o.d"
  "/root/repo/src/graph/tensor_shape.cpp" "src/CMakeFiles/tap.dir/graph/tensor_shape.cpp.o" "gcc" "src/CMakeFiles/tap.dir/graph/tensor_shape.cpp.o.d"
  "/root/repo/src/ir/dot_export.cpp" "src/CMakeFiles/tap.dir/ir/dot_export.cpp.o" "gcc" "src/CMakeFiles/tap.dir/ir/dot_export.cpp.o.d"
  "/root/repo/src/ir/graph_node.cpp" "src/CMakeFiles/tap.dir/ir/graph_node.cpp.o" "gcc" "src/CMakeFiles/tap.dir/ir/graph_node.cpp.o.d"
  "/root/repo/src/ir/lowering.cpp" "src/CMakeFiles/tap.dir/ir/lowering.cpp.o" "gcc" "src/CMakeFiles/tap.dir/ir/lowering.cpp.o.d"
  "/root/repo/src/models/moe.cpp" "src/CMakeFiles/tap.dir/models/moe.cpp.o" "gcc" "src/CMakeFiles/tap.dir/models/moe.cpp.o.d"
  "/root/repo/src/models/multimodal.cpp" "src/CMakeFiles/tap.dir/models/multimodal.cpp.o" "gcc" "src/CMakeFiles/tap.dir/models/multimodal.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/tap.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/tap.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/transformer.cpp" "src/CMakeFiles/tap.dir/models/transformer.cpp.o" "gcc" "src/CMakeFiles/tap.dir/models/transformer.cpp.o.d"
  "/root/repo/src/pruning/name_tree.cpp" "src/CMakeFiles/tap.dir/pruning/name_tree.cpp.o" "gcc" "src/CMakeFiles/tap.dir/pruning/name_tree.cpp.o.d"
  "/root/repo/src/pruning/prune.cpp" "src/CMakeFiles/tap.dir/pruning/prune.cpp.o" "gcc" "src/CMakeFiles/tap.dir/pruning/prune.cpp.o.d"
  "/root/repo/src/rewrite/packing.cpp" "src/CMakeFiles/tap.dir/rewrite/packing.cpp.o" "gcc" "src/CMakeFiles/tap.dir/rewrite/packing.cpp.o.d"
  "/root/repo/src/rewrite/rewrite.cpp" "src/CMakeFiles/tap.dir/rewrite/rewrite.cpp.o" "gcc" "src/CMakeFiles/tap.dir/rewrite/rewrite.cpp.o.d"
  "/root/repo/src/runtime/autodiff.cpp" "src/CMakeFiles/tap.dir/runtime/autodiff.cpp.o" "gcc" "src/CMakeFiles/tap.dir/runtime/autodiff.cpp.o.d"
  "/root/repo/src/runtime/backward_kernels.cpp" "src/CMakeFiles/tap.dir/runtime/backward_kernels.cpp.o" "gcc" "src/CMakeFiles/tap.dir/runtime/backward_kernels.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/tap.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/tap.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/kernels.cpp" "src/CMakeFiles/tap.dir/runtime/kernels.cpp.o" "gcc" "src/CMakeFiles/tap.dir/runtime/kernels.cpp.o.d"
  "/root/repo/src/runtime/spmd_interpreter.cpp" "src/CMakeFiles/tap.dir/runtime/spmd_interpreter.cpp.o" "gcc" "src/CMakeFiles/tap.dir/runtime/spmd_interpreter.cpp.o.d"
  "/root/repo/src/runtime/tensor.cpp" "src/CMakeFiles/tap.dir/runtime/tensor.cpp.o" "gcc" "src/CMakeFiles/tap.dir/runtime/tensor.cpp.o.d"
  "/root/repo/src/sharding/enumerate.cpp" "src/CMakeFiles/tap.dir/sharding/enumerate.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sharding/enumerate.cpp.o.d"
  "/root/repo/src/sharding/pattern.cpp" "src/CMakeFiles/tap.dir/sharding/pattern.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sharding/pattern.cpp.o.d"
  "/root/repo/src/sharding/plan.cpp" "src/CMakeFiles/tap.dir/sharding/plan.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sharding/plan.cpp.o.d"
  "/root/repo/src/sharding/routing.cpp" "src/CMakeFiles/tap.dir/sharding/routing.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sharding/routing.cpp.o.d"
  "/root/repo/src/sharding/shard_spec.cpp" "src/CMakeFiles/tap.dir/sharding/shard_spec.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sharding/shard_spec.cpp.o.d"
  "/root/repo/src/sim/loss_curve.cpp" "src/CMakeFiles/tap.dir/sim/loss_curve.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sim/loss_curve.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/tap.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/tap.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/tap.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/tap.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/tap.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/tap.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/tap.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
