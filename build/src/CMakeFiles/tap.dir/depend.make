# Empty dependencies file for tap.
# This may be replaced when dependencies are built.
