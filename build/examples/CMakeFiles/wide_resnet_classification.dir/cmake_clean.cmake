file(REMOVE_RECURSE
  "CMakeFiles/wide_resnet_classification.dir/wide_resnet_classification.cpp.o"
  "CMakeFiles/wide_resnet_classification.dir/wide_resnet_classification.cpp.o.d"
  "wide_resnet_classification"
  "wide_resnet_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_resnet_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
