# Empty compiler generated dependencies file for wide_resnet_classification.
# This may be replaced when dependencies are built.
