# Empty compiler generated dependencies file for tap_cli.
# This may be replaced when dependencies are built.
