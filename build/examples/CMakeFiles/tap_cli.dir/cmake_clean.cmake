file(REMOVE_RECURSE
  "CMakeFiles/tap_cli.dir/tap_cli.cpp.o"
  "CMakeFiles/tap_cli.dir/tap_cli.cpp.o.d"
  "tap_cli"
  "tap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
