# Empty dependencies file for t5_deep_scaling.
# This may be replaced when dependencies are built.
