file(REMOVE_RECURSE
  "CMakeFiles/t5_deep_scaling.dir/t5_deep_scaling.cpp.o"
  "CMakeFiles/t5_deep_scaling.dir/t5_deep_scaling.cpp.o.d"
  "t5_deep_scaling"
  "t5_deep_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t5_deep_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
