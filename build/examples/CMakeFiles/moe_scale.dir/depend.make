# Empty dependencies file for moe_scale.
# This may be replaced when dependencies are built.
