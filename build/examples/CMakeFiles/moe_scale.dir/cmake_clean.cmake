file(REMOVE_RECURSE
  "CMakeFiles/moe_scale.dir/moe_scale.cpp.o"
  "CMakeFiles/moe_scale.dir/moe_scale.cpp.o.d"
  "moe_scale"
  "moe_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
