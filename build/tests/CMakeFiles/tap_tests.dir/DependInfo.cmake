
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autodiff.cpp" "tests/CMakeFiles/tap_tests.dir/test_autodiff.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_autodiff.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/tap_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_collectives_properties.cpp" "tests/CMakeFiles/tap_tests.dir/test_collectives_properties.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_collectives_properties.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/tap_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_cost.cpp" "tests/CMakeFiles/tap_tests.dir/test_cost.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_cost.cpp.o.d"
  "/root/repo/tests/test_equivalence.cpp" "tests/CMakeFiles/tap_tests.dir/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_equivalence.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/tap_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_builder.cpp" "tests/CMakeFiles/tap_tests.dir/test_graph_builder.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_graph_builder.cpp.o.d"
  "/root/repo/tests/test_heterogeneous.cpp" "tests/CMakeFiles/tap_tests.dir/test_heterogeneous.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_heterogeneous.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/tap_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_lowering.cpp" "tests/CMakeFiles/tap_tests.dir/test_lowering.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_lowering.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/tap_tests.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/tap_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_name_tree.cpp" "tests/CMakeFiles/tap_tests.dir/test_name_tree.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_name_tree.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/tap_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_prune.cpp" "tests/CMakeFiles/tap_tests.dir/test_prune.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_prune.cpp.o.d"
  "/root/repo/tests/test_rewrite.cpp" "tests/CMakeFiles/tap_tests.dir/test_rewrite.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_rewrite.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/tap_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/tap_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/tap_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_sharding_patterns.cpp" "tests/CMakeFiles/tap_tests.dir/test_sharding_patterns.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_sharding_patterns.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/tap_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_spmd_interpreter.cpp" "tests/CMakeFiles/tap_tests.dir/test_spmd_interpreter.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_spmd_interpreter.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/tap_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_tensor_shape.cpp" "tests/CMakeFiles/tap_tests.dir/test_tensor_shape.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_tensor_shape.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/tap_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_training_loop.cpp" "tests/CMakeFiles/tap_tests.dir/test_training_loop.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_training_loop.cpp.o.d"
  "/root/repo/tests/test_training_options.cpp" "tests/CMakeFiles/tap_tests.dir/test_training_options.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_training_options.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/tap_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/tap_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
