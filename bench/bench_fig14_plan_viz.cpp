// Fig. 14: visualization of the sharding plans TAP discovers for T5.
// The paper shows TAP finding not only Megatron-style and data-parallel
// plans but also the partial MHA-only and FFN-only plans; on its testbed
// the surprising winner was FFN-only (attention replicated, feed-forward
// sharded). We render the four expert plans plus TAP's discovered best,
// in two regimes: the paper's batch 16, and batch 4 where activations are
// cheap relative to weights and full sharding wins.
#include "bench_common.h"
#include "core/visualize.h"

int main() {
  using namespace tap;
  bench::header("Fig. 14 — discovered sharding plans for T5",
                "paper Fig. 14");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  {
    bench::Workload w = bench::t5_workload(4, /*batch=*/16);
    pruning::PruneResult pruned = pruning::prune_graph(w.tg);
    for (const char* name : {"DP", "MHA", "FFN", "Megatron"}) {
      auto plan = baselines::named_expert_plan(name, w.tg, cluster.world());
      std::cout << "---- expert plan: " << name << " ----\n";
      // Per-op comm annotations come from the attribution ledger the cost
      // model fills — the same source --explain reports read.
      auto routed = sharding::route_plan(w.tg, plan);
      cost::CommLedger ledger;
      cost::comm_cost(routed, cluster.world(), cluster, {}, &ledger);
      // Show only the encoder block family to keep the figure readable.
      pruning::PruneResult block_only;
      for (const auto& f : pruned.families)
        if (f.representative.find("encoder/block_0") != std::string::npos)
          block_only.families.push_back(f);
      std::cout << core::visualize_plan(w.tg, plan, block_only, &ledger);
    }
  }

  for (std::int64_t batch : {16, 4}) {
    bench::Workload w = bench::t5_workload(4, batch);
    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);
    cost::CommLedger ledger;
    cost::comm_cost(tap.routed, cluster.world(), cluster, {}, &ledger);
    std::cout << "---- TAP discovered best (batch " << batch << ") ----\n";
    std::cout << core::visualize_plan(w.tg, tap.best_plan, tap.pruning,
                                      &ledger);
    std::printf("search: %lld candidates, %.1f ms, comm cost %.2f ms\n\n",
                static_cast<long long>(tap.candidate_plans),
                tap.search_seconds * 1e3, tap.cost.total() * 1e3);
  }
  std::cout << "At batch 16 gradient traffic dominates, so TAP keeps "
               "weights replicated where the batch divides; at batch 4 "
               "(more GPUs than samples) activations are cheap and TAP "
               "discovers the fully/partially sharded plans of the "
               "paper's figure.\n";
  return 0;
}
