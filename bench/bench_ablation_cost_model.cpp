// Ablation (DESIGN.md decision 3): is the communication-only cost model a
// good proxy for simulated step time? We enumerate all 729 encoder-block
// candidates of a T5, score each with (a) the comm cost model and (b) the
// full discrete-event simulator, and report the rank agreement (Kendall
// tau over sampled pairs) and whether the comm-cost winner is within a few
// percent of the simulation winner.
#include "bench_common.h"
#include "pruning/prune.h"
#include "sharding/enumerate.h"

int main() {
  using namespace tap;
  bench::header("Ablation — comm-only cost model vs full simulation",
                "DESIGN.md decision 3");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  bench::Workload w = bench::t5_workload(2);
  pruning::PruneResult pr = pruning::prune_graph(w.tg);
  const pruning::SubgraphFamily* block = nullptr;
  for (const auto& f : pr.families)
    if (f.representative.find("encoder/block_0") != std::string::npos)
      block = &f;
  if (block == nullptr) return 1;

  sharding::FamilyPlanEnumerator e(w.tg, *block, cluster.world());
  std::vector<double> comm, simt;
  std::vector<int> choice;
  while (e.next(&choice)) {
    sharding::ShardingPlan plan =
        sharding::default_plan(w.tg, cluster.world());
    sharding::apply_family_choice(*block, choice, &plan);
    auto routed = sharding::route_plan(w.tg, plan);
    if (!routed.valid) continue;
    cost::CostOptions copts;
    copts.overlap_window_s = cost::backward_compute_window(
        w.tg, routed, nullptr, cluster.world(), cluster);
    comm.push_back(
        cost::comm_cost(routed, cluster.world(), cluster, copts).total());
    simt.push_back(
        sim::simulate_step(w.tg, routed, cluster.world(), cluster)
            .iteration_s);
  }

  // Kendall tau over a deterministic pair sample.
  std::size_t n = comm.size();
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    for (std::size_t j = i + 1; j < n; j += 7) {
      double dc = comm[i] - comm[j];
      double ds = simt[i] - simt[j];
      if (dc * ds > 0) {
        ++concordant;
      } else if (dc * ds < 0) {
        ++discordant;
      }
    }
  }
  double tau = static_cast<double>(concordant - discordant) /
               std::max(1.0, static_cast<double>(concordant + discordant));

  std::size_t best_comm = 0, best_sim = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (comm[i] < comm[best_comm]) best_comm = i;
    if (simt[i] < simt[best_sim]) best_sim = i;
  }
  double regret =
      (simt[best_comm] - simt[best_sim]) / simt[best_sim] * 100.0;

  std::printf("plans scored: %zu\n", n);
  std::printf("Kendall tau (comm cost vs simulated step): %.3f\n", tau);
  std::printf("regret of comm-cost winner vs simulation winner: %.2f%%\n",
              regret);
  std::printf("verdict: the comm-only model is a %s proxy (paper uses it "
              "because communication dominates once groups span nodes)\n",
              tau > 0.5 && regret < 10.0 ? "good" : "rough");
  return 0;
}
