// Fig. 12: training time per iteration for ResNet-50 (batch size 1024)
// as the classification layer widens. Paper shape: TAP consistently
// outperforms Alpa here — the wildly imbalanced architecture (24M trunk +
// up-to-205M classifier) defeats stage partitioning — and Alpa's candidate
// plans vary a lot (the variance band).
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Fig. 12 — ResNet-50 iteration time (batch 1024)",
                "paper Fig. 12");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_node();
  util::Table table({"classes", "TAP ms", "Alpa best ms", "Alpa band min",
                     "Alpa band mean", "Alpa band max"});
  for (std::int64_t classes : {1'000, 10'000, 50'000, 100'000}) {
    bench::Workload w = bench::resnet_workload(classes);

    core::TapOptions topts;
    topts.num_shards = 8;
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);
    auto tap_step = sim::simulate_step(w.tg, tap.routed, 8, cluster);

    baselines::AlpaOptions al;
    al.num_shards = 8;
    al.max_candidate_plans = 5;
    al.profile_repeats = 20;
    auto alpa = baselines::alpa_like_search(w.graph, cluster, al);
    bench::AlpaBand band = bench::simulate_alpa_band(w.graph, alpa, cluster);

    table.add_row({std::to_string(classes), bench::ms(tap_step.iteration_s),
                   bench::ms(band.best), bench::ms(band.min),
                   bench::ms(band.mean), bench::ms(band.max)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: TAP <= Alpa-like best across the sweep, and "
               "the Alpa band (max vs min) is wide — stage partitioning "
               "struggles with the imbalanced classifier (paper §6.3.2).\n";
  return 0;
}
