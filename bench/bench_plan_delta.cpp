// Incremental replanning bench (ISSUE 8): warm-started graph-delta
// replan vs cold search on the canonical fleet edit — one extra block on
// an already-planned model. The warm path sketches the edited graph,
// finds the base plan as its similarity donor, pins every shared family
// from the family-outcome cache and re-searches only the rest, so it
// pays fingerprints + prune + route instead of the family enumeration.
//
// The acceptance bar is a >= 5x warm-over-cold speedup on the T5
// one-block edit, enforced by the exit code (CI's bench-smoke job fails
// on a regression). The bench also re-verifies the differential contract
// end to end: the warm plan must serialize byte-identically to the cold
// plan, or the process exits 1 regardless of speed.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/serialize.h"
#include "service/planner_service.h"
#include "util/stopwatch.h"

namespace {

struct DeltaCase {
  std::string label;
  std::string slug;
  std::function<tap::Graph()> base;
  std::function<tap::Graph()> edited;
};

}  // namespace

int main() {
  using namespace tap;
  bench::header("Incremental replanning — graph-delta warm start vs cold",
                "service subsystem");

  const std::vector<DeltaCase> cases = {
      {"T5 8->9 layers", "t5",
       [] {
         return models::build_transformer(models::t5_with_layers(8));
       },
       [] {
         return models::build_transformer(models::t5_with_layers(9));
       }},
      {"WideNet MoE 4->5 layers", "moe",
       [] {
         models::MoeConfig cfg = models::widenet();
         cfg.num_layers = 4;
         return models::build_moe_transformer(cfg);
       },
       [] {
         models::MoeConfig cfg = models::widenet();
         cfg.num_layers = 5;
         return models::build_moe_transformer(cfg);
       }},
  };

  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_cluster(2);
  opts.num_shards = 8;
  opts.dp_replicas = 2;
  opts.threads = 1;
  // Exhaustive budget: lets the T5 decoder block (3^10 candidates)
  // enumerate instead of going greedy, so the bench measures the real
  // cost of the family search the warm start skips.
  opts.max_plans_per_family = 100000;

  constexpr int kIters = 3;  // best-of-N against scheduler noise
  util::Table table({"edit", "cold ms", "warm ms", "speedup", "pinned"});
  bench::BenchReporter report("plan_delta");
  double t5_speedup = 0.0;
  bool identical = true;

  for (const DeltaCase& c : cases) {
    bench::Workload base(c.base());
    bench::Workload edited(c.edited());
    const service::PlanRequest base_req{&base.tg, opts, false};
    const service::PlanRequest edited_req{&edited.tg, opts, false};

    double cold_s = 0.0, warm_s = 0.0;
    std::int64_t pinned = 0;
    core::TapResult cold_result, warm_result;
    util::Stopwatch sw;
    for (int i = 0; i < kIters; ++i) {
      // Cold: a fresh service with empty plan and family caches.
      service::ServiceOptions cold_opts;
      cold_opts.request_threads = 1;
      service::PlannerService cold_svc(cold_opts);
      sw.restart();
      cold_result = cold_svc.plan(edited_req);
      cold_s = i == 0 ? sw.elapsed_seconds()
                      : std::min(cold_s, sw.elapsed_seconds());

      // Warm: the service already planned the base model; the edited
      // request misses the exact cache and warm-starts off the donor.
      service::ServiceOptions warm_opts;
      warm_opts.request_threads = 1;
      service::PlannerService warm_svc(warm_opts);
      warm_svc.plan(base_req);
      sw.restart();
      warm_result = warm_svc.plan(edited_req);
      warm_s = i == 0 ? sw.elapsed_seconds()
                      : std::min(warm_s, sw.elapsed_seconds());
      pinned = warm_result.provenance.families_pinned;
    }

    // The warm path must actually be incremental and must be
    // byte-identical to the cold search — speed means nothing otherwise.
    if (!warm_result.provenance.incremental() || pinned <= 0) {
      std::cout << "ERROR: " << c.label
                << " warm replan was not incremental (pinned " << pinned
                << ")\n";
      identical = false;
    }
    if (core::plan_to_json(edited.tg, cold_result.best_plan) !=
            core::plan_to_json(edited.tg, warm_result.best_plan) ||
        cold_result.cost.comm_bytes != warm_result.cost.comm_bytes) {
      std::cout << "ERROR: " << c.label
                << " warm plan differs from the cold plan\n";
      identical = false;
    }

    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    if (c.slug == "t5") t5_speedup = speedup;
    table.add_row({c.label, bench::ms(cold_s), bench::ms(warm_s),
                   util::fmt("%.1fx", speedup), std::to_string(pinned)});
    report.add(c.slug + ".cold_ms", cold_s * 1e3);
    report.add(c.slug + ".warm_ms", warm_s * 1e3);
    report.add(c.slug + ".speedup", speedup);
    report.add(c.slug + ".families_pinned", static_cast<double>(pinned));
  }
  table.print(std::cout);
  report.add("t5.speedup_bar", 5.0);
  report.note("gate",
              "exit 1 when t5.speedup < 5 or warm != cold byte-for-byte");

  std::cout << "\nA warm start pins every family the donor shares and "
               "re-searches only the delta; the one-block edit shares "
               "everything, so the replan pays fingerprints + prune + "
               "route."
            << (t5_speedup >= 5.0
                    ? util::fmt(" T5 warm speedup %.1fx meets the >=5x "
                                "bar.\n",
                                t5_speedup)
                    : util::fmt(" WARNING: T5 warm speedup %.1fx is below "
                                "the 5x bar.\n",
                                t5_speedup));
  return identical && t5_speedup >= 5.0 ? 0 : 1;
}
