// Networked plan-serving load bench (ISSUE 7): a closed-loop driver
// hammers one in-process tap_serve stack (PlannerService + PlanHandler +
// HttpServer on an ephemeral port) with a Zipf-skewed mix of plan
// requests over persistent keep-alive connections — the canonical
// serving-tier shape, where a few hot architectures dominate and the
// cache tier should absorb them.
//
// Reported: sustained throughput, latency p50/p95/p99, cache-hit ratio,
// and shed rate; the figures land in BENCH_service_load.json when
// TAP_BENCH_JSON is set (CI's bench-smoke artifact path). The driver is
// deterministic (util::Rng, fixed seeds); wall-clock figures of course
// are not.
//
// Flight-recorder overhead gate (ISSUE 9): the same load runs in
// interleaved legs with the per-shard flight recorder disabled and
// enabled, and the best-of throughput with the recorder ON must stay
// within 2% of the best-of with it OFF — the recorder claims to be
// unfeelable on the hot path, so CI holds it to that. Interleaving the
// legs (off, on, off, on, ...) and comparing best-of-N absorbs most
// scheduler noise; a borderline result gets one retry with fresh legs
// before the bench fails.
#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "net/http_server.h"
#include "net/plan_client.h"
#include "net/plan_handler.h"
#include "service/planner_service.h"
#include "service/wire.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace tap;

/// The request mix: small fixed-mesh problems (search cost stays modest,
/// which keeps the bench about the serving tier, not the planner).
std::vector<service::ModelSpec> request_mix() {
  std::vector<service::ModelSpec> mix;
  for (const auto& [layers, dp, tp] :
       {std::tuple<int, int, int>{2, 2, 4}, {2, 1, 8}, {4, 2, 4}, {4, 4, 2}}) {
    service::ModelSpec spec;
    spec.model = "t5";
    spec.layers = layers;
    spec.nodes = 1;
    spec.gpus = 8;
    spec.dp = dp;
    spec.tp = tp;
    mix.push_back(spec);
  }
  return mix;
}

/// Zipf(s) sampler over [0, n) via inverse CDF of precomputed weights.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / total;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
  }

  std::size_t sample(util::Rng& rng) const {
    const double u = rng.next_double();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct LoadResult {
  double wall_s = 0.0;
  std::vector<double> latencies;  ///< per-request ms, unsorted
  int errors = 0;

  double throughput() const {
    return wall_s > 0
               ? static_cast<double>(latencies.size()) / wall_s
               : 0.0;
  }
};

/// One closed-loop leg: `clients` threads, `requests_per_client` POSTs
/// each, Zipf-skewed over `bodies`, persistent connections. `seed_salt`
/// keeps legs deterministic yet distinct.
LoadResult run_load(net::HttpServer& server,
                    const std::vector<std::string>& bodies, int clients,
                    int requests_per_client, double zipf_s,
                    std::uint64_t seed_salt) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<int> errors(static_cast<std::size_t>(clients), 0);
  util::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(0x5eedu + seed_salt * 1000003u +
                    static_cast<std::uint64_t>(c));
      Zipf zipf(bodies.size(), zipf_s);
      net::HttpConnection conn({"127.0.0.1", server.bound_port()}, {});
      net::HttpMessage post;
      post.method = "POST";
      post.target = "/plan";
      for (int i = 0; i < requests_per_client; ++i) {
        post.body = bodies[zipf.sample(rng)];
        util::Stopwatch sw;
        try {
          net::HttpMessage resp = conn.request(post);
          if (resp.status != 200) ++errors[static_cast<std::size_t>(c)];
        } catch (const net::HttpClientError&) {
          ++errors[static_cast<std::size_t>(c)];
        }
        latencies[static_cast<std::size_t>(c)].push_back(
            sw.elapsed_millis());
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult out;
  out.wall_s = wall.elapsed_seconds();
  for (int c = 0; c < clients; ++c) {
    out.latencies.insert(out.latencies.end(),
                         latencies[static_cast<std::size_t>(c)].begin(),
                         latencies[static_cast<std::size_t>(c)].end());
    out.errors += errors[static_cast<std::size_t>(c)];
  }
  return out;
}

}  // namespace

int main() {
  using namespace tap;
  bench::header("Plan-serving tier under Zipf-skewed closed-loop load",
                "networked serving (ISSUE 7)");

  const std::vector<service::ModelSpec> mix = request_mix();
  std::vector<std::string> bodies;
  for (const auto& spec : mix)
    bodies.push_back(service::model_spec_to_json(spec));

  service::PlannerService svc;
  net::PlanHandler handler(&svc, {});
  net::HttpServerOptions sopts;
  sopts.connection_threads = 8;
  net::HttpServer server(
      [&handler](const net::HttpMessage& r) { return handler.handle(r); },
      sopts);
  server.start();

  const int kClients = 4;
  const int kRequestsPerClient = 100;
  const double kZipfS = 1.2;
  const int kRounds = 3;
  const double kMaxOverhead = 0.02;  // recorder-on may cost at most 2%

  // Warmup: populate the plan cache (the four searches happen here) and
  // fault in every connection-path code page, so the measured legs
  // compare recorder cost, not cold-start cost.
  run_load(server, bodies, kClients, kRequestsPerClient, kZipfS,
           /*seed_salt=*/0);

  std::vector<double> all;  // latencies across every measured leg
  int total_errors = 0;
  double best_off = 0.0, best_on = 0.0;
  std::uint64_t salt = 1;
  auto measure_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const bool on : {false, true}) {
        handler.recorder().set_enabled(on);
        const LoadResult leg = run_load(server, bodies, kClients,
                                        kRequestsPerClient, kZipfS, salt++);
        total_errors += leg.errors;
        all.insert(all.end(), leg.latencies.begin(), leg.latencies.end());
        (on ? best_on : best_off) =
            std::max(on ? best_on : best_off, leg.throughput());
      }
    }
    handler.recorder().set_enabled(true);
  };
  measure_rounds(kRounds);
  if (best_on < (1.0 - kMaxOverhead) * best_off) {
    // Borderline: one retry with fresh interleaved legs before failing —
    // best-of over more legs converges on the true (noise-free) rate.
    std::cout << "recorder overhead above bar, retrying with " << kRounds
              << " more rounds\n";
    measure_rounds(kRounds);
  }
  server.stop();
  std::sort(all.begin(), all.end());

  const auto stats = svc.stats();
  const double total = static_cast<double>(all.size());
  const double hit_ratio =
      stats.requests > 0 ? static_cast<double>(stats.cache_hits) /
                               static_cast<double>(stats.requests)
                         : 0.0;
  const double shed_rate =
      stats.requests > 0 ? static_cast<double>(stats.shed) /
                               static_cast<double>(stats.requests)
                         : 0.0;
  const double p50 = percentile(all, 0.50);
  const double p95 = percentile(all, 0.95);
  const double p99 = percentile(all, 0.99);
  const double overhead_pct =
      best_off > 0 ? (best_off - best_on) / best_off * 100.0 : 0.0;

  util::Table table({"metric", "value"});
  table.add_row({"requests", util::fmt("%.0f", total)});
  table.add_row({"throughput req/s (recorder off)",
                 util::fmt("%.1f", best_off)});
  table.add_row({"throughput req/s (recorder on)",
                 util::fmt("%.1f", best_on)});
  table.add_row({"recorder overhead %", util::fmt("%.2f", overhead_pct)});
  table.add_row({"latency p50 ms", util::fmt("%.2f", p50)});
  table.add_row({"latency p95 ms", util::fmt("%.2f", p95)});
  table.add_row({"latency p99 ms", util::fmt("%.2f", p99)});
  table.add_row({"cache-hit ratio", util::fmt("%.3f", hit_ratio)});
  table.add_row({"shed rate", util::fmt("%.3f", shed_rate)});
  table.add_row({"errors", std::to_string(total_errors)});
  table.print(std::cout);
  std::cout << "\n";

  bench::BenchReporter reporter("service_load");
  reporter.add("requests", total);
  reporter.add("throughput_rps", best_on);
  reporter.add("recorder_off_rps", best_off);
  reporter.add("recorder_on_rps", best_on);
  reporter.add("recorder_overhead_pct", overhead_pct);
  reporter.add("latency_p50_ms", p50);
  reporter.add("latency_p95_ms", p95);
  reporter.add("latency_p99_ms", p99);
  reporter.add("cache_hit_ratio", hit_ratio);
  reporter.add("shed_rate", shed_rate);
  reporter.add("errors", total_errors);
  reporter.note("mix", "4 t5 specs, zipf s=1.2, 4 closed-loop clients, "
                       "interleaved recorder off/on legs");

  // The bars CI can hold: every request answered, the Zipf-hot mix
  // overwhelmingly cache-served after the warmup misses, and the flight
  // recorder invisible at the throughput level.
  if (total_errors > 0) {
    std::cerr << "FAIL: " << total_errors << " request errors\n";
    return 1;
  }
  if (hit_ratio < 0.9) {
    std::cerr << "FAIL: cache-hit ratio " << hit_ratio
              << " below 0.9 under a 4-spec Zipf mix\n";
    return 1;
  }
  if (best_on < (1.0 - kMaxOverhead) * best_off) {
    std::cerr << "FAIL: flight-recorder overhead "
              << util::fmt("%.2f", overhead_pct) << "% exceeds "
              << kMaxOverhead * 100.0 << "% (best on " << best_on
              << " req/s vs best off " << best_off << " req/s)\n";
    return 1;
  }
  return 0;
}
