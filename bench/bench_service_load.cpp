// Networked plan-serving load bench (ISSUE 7): a closed-loop driver
// hammers one in-process tap_serve stack (PlannerService + PlanHandler +
// HttpServer on an ephemeral port) with a Zipf-skewed mix of plan
// requests over persistent keep-alive connections — the canonical
// serving-tier shape, where a few hot architectures dominate and the
// cache tier should absorb them.
//
// Reported: sustained throughput, latency p50/p95/p99, cache-hit ratio,
// and shed rate; the figures land in BENCH_service_load.json when
// TAP_BENCH_JSON is set (CI's bench-smoke artifact path). The driver is
// deterministic (util::Rng, fixed seeds); wall-clock figures of course
// are not.
//
// Flight-recorder overhead gate (ISSUE 9): the same load runs in
// interleaved legs with the per-shard flight recorder disabled and
// enabled, and the best-of throughput with the recorder ON must stay
// within 2% of the best-of with it OFF — the recorder claims to be
// unfeelable on the hot path, so CI holds it to that. Interleaving the
// legs (off, on, off, on, ...) and comparing best-of-N absorbs most
// scheduler noise; a borderline result gets one retry with fresh legs
// before the bench fails.
// Chaos leg (ISSUE 10): `bench_service_load --chaos` switches to an
// OPEN-LOOP arrival schedule against a replicated 2-shard fleet (two
// replicas per slot), kills one whole shard (both replicas) mid-run under
// injected network faults (net.accept / net.read.stall / net.write.reset
// / net.respond.delay), restarts it, and gates on: zero client-visible
// errors, every response byte-identical to its healthy-fleet reference
// (failover-served included), nonzero client failovers, a p99 SLO
// (TAP_CHAOS_P99_SLO_MS, default 1500), and the restarted shard serving
// again. Latency is measured from each request's SCHEDULED arrival, so
// backlog built while the fleet degrades counts against the SLO the way
// it would for a real caller. Figures land in BENCH_service_chaos.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "net/http_server.h"
#include "net/plan_client.h"
#include "net/plan_handler.h"
#include "obs/metrics.h"
#include "service/planner_service.h"
#include "service/wire.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace tap;

/// The request mix: small fixed-mesh problems (search cost stays modest,
/// which keeps the bench about the serving tier, not the planner).
std::vector<service::ModelSpec> request_mix() {
  std::vector<service::ModelSpec> mix;
  for (const auto& [layers, dp, tp] :
       {std::tuple<int, int, int>{2, 2, 4}, {2, 1, 8}, {4, 2, 4}, {4, 4, 2}}) {
    service::ModelSpec spec;
    spec.model = "t5";
    spec.layers = layers;
    spec.nodes = 1;
    spec.gpus = 8;
    spec.dp = dp;
    spec.tp = tp;
    mix.push_back(spec);
  }
  return mix;
}

/// Zipf(s) sampler over [0, n) via inverse CDF of precomputed weights.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / total;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
  }

  std::size_t sample(util::Rng& rng) const {
    const double u = rng.next_double();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct LoadResult {
  double wall_s = 0.0;
  std::vector<double> latencies;  ///< per-request ms, unsorted
  int errors = 0;

  double throughput() const {
    return wall_s > 0
               ? static_cast<double>(latencies.size()) / wall_s
               : 0.0;
  }
};

/// One closed-loop leg: `clients` threads, `requests_per_client` POSTs
/// each, Zipf-skewed over `bodies`, persistent connections. `seed_salt`
/// keeps legs deterministic yet distinct.
LoadResult run_load(net::HttpServer& server,
                    const std::vector<std::string>& bodies, int clients,
                    int requests_per_client, double zipf_s,
                    std::uint64_t seed_salt) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<int> errors(static_cast<std::size_t>(clients), 0);
  util::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(0x5eedu + seed_salt * 1000003u +
                    static_cast<std::uint64_t>(c));
      Zipf zipf(bodies.size(), zipf_s);
      net::HttpConnection conn({"127.0.0.1", server.bound_port()}, {});
      net::HttpMessage post;
      post.method = "POST";
      post.target = "/plan";
      for (int i = 0; i < requests_per_client; ++i) {
        post.body = bodies[zipf.sample(rng)];
        util::Stopwatch sw;
        try {
          net::HttpMessage resp = conn.request(post);
          if (resp.status != 200) ++errors[static_cast<std::size_t>(c)];
        } catch (const net::HttpClientError&) {
          ++errors[static_cast<std::size_t>(c)];
        }
        latencies[static_cast<std::size_t>(c)].push_back(
            sw.elapsed_millis());
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult out;
  out.wall_s = wall.elapsed_seconds();
  for (int c = 0; c < clients; ++c) {
    out.latencies.insert(out.latencies.end(),
                         latencies[static_cast<std::size_t>(c)].begin(),
                         latencies[static_cast<std::size_t>(c)].end());
    out.errors += errors[static_cast<std::size_t>(c)];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chaos leg (ISSUE 10)
// ---------------------------------------------------------------------------

/// Default injected-network-fault mix for a local `--chaos` run; CI's
/// chaos-smoke job overrides it via TAP_FAULT / TAP_FAULT_SEED (the
/// env-installed injector wins — see the check in run_chaos).
constexpr const char kDefaultChaosFaults[] =
    "net.read.stall=delay:2:0.05,net.write.reset=fail:0.01,"
    "net.respond.delay=delay:2:0.05,net.accept=fail:0.02";

/// One in-process replica of one shard slot: its own PlannerService (so a
/// restart comes back with a cold cache, like a real process restart),
/// PlanHandler, and HttpServer. First start() binds an ephemeral port;
/// restarts re-bind the same port (SO_REUSEADDR), which is what lets the
/// client's persistent endpoints find the replica again.
struct ShardReplica {
  int shards = 1;
  int shard_id = 0;
  int port = 0;
  std::unique_ptr<service::PlannerService> svc;
  std::unique_ptr<net::PlanHandler> handler;
  std::unique_ptr<net::HttpServer> server;

  void start() {
    svc = std::make_unique<service::PlannerService>();
    net::PlanHandlerOptions hopts;
    hopts.num_shards = shards;
    hopts.shard_id = shard_id;
    handler = std::make_unique<net::PlanHandler>(svc.get(), hopts);
    net::HttpServerOptions sopts;
    sopts.port = port;
    sopts.connection_threads = 4;
    net::PlanHandler* h = handler.get();
    // Re-binding the fixed port can transiently collide with the old
    // listener's teardown; a few retries absorb it.
    for (int attempt = 0;; ++attempt) {
      try {
        server = std::make_unique<net::HttpServer>(
            [h](const net::HttpMessage& r) { return h->handle(r); }, sopts);
        server->start();
        break;
      } catch (const std::exception&) {
        server.reset();
        if (attempt >= 20) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    port = server->bound_port();
  }

  void stop() {
    if (server) server->stop();  // joins every worker: handler/svc now idle
    server.reset();
    handler.reset();
    svc.reset();
  }
};

int run_chaos() {
  bench::header("Plan-serving fleet under chaos: shard kill + net faults",
                "fleet fault tolerance (ISSUE 10)");

  // Deterministic fault environment: honor an env-installed injector
  // (CI's fixed TAP_FAULT seed) or install the default chaos mix.
  std::unique_ptr<util::ScopedFaultInjector> fault;
  if (util::fault_injector() == nullptr) {
    fault = std::make_unique<util::ScopedFaultInjector>(kDefaultChaosFaults,
                                                        /*seed=*/777);
  }
  util::FaultInjector* injector = util::fault_injector();
  std::printf("faults: %s (seed %llu)\n", injector->spec().c_str(),
              static_cast<unsigned long long>(injector->seed()));

  const int kShards = 2;
  const int kReplicas = 2;
  std::vector<std::vector<ShardReplica>> fleet(
      static_cast<std::size_t>(kShards));
  std::vector<std::string> slot_urls;
  for (int s = 0; s < kShards; ++s) {
    std::string slot;
    for (int r = 0; r < kReplicas; ++r) {
      ShardReplica rep;
      rep.shards = kShards;
      rep.shard_id = s;
      rep.start();
      if (!slot.empty()) slot += "|";
      slot += "http://127.0.0.1:" + std::to_string(rep.port);
      fleet[static_cast<std::size_t>(s)].push_back(std::move(rep));
    }
    slot_urls.push_back(slot);
    std::printf("shard %d: %s\n", s, slot.c_str());
  }

  net::ClientOptions copts;
  copts.retries = 4;
  copts.backoff_ms = 5.0;
  copts.timeout_ms = 5000.0;
  copts.breaker.failure_threshold = 2;
  copts.breaker.cooldown_ms = 150.0;
  net::PlanClient client(slot_urls, copts);

  // Reference bytes per spec, collected while the fleet is healthy. The
  // determinism contract says EVERY later answer — owner, backup replica,
  // or non-owner failover — must match these byte for byte.
  const std::vector<service::ModelSpec> mix = request_mix();
  std::vector<std::string> bodies;
  std::vector<service::PlanKey> keys;
  std::vector<std::string> reference;
  bool warm_ok = true;
  for (const auto& spec : mix) {
    const std::string body = service::model_spec_to_json(spec);
    Graph g = service::build_spec_model(spec);
    const ir::TapGraph tg = ir::lower(g);
    const service::PlanKey key = service::make_plan_key(
        tg, service::options_for_spec(spec, /*threads=*/1), spec.sweep());
    net::HttpMessage resp = client.post_plan(key, body);
    if (resp.status != 200) warm_ok = false;
    bodies.push_back(body);
    keys.push_back(key);
    reference.push_back(resp.body);
  }
  if (!warm_ok) {
    std::cerr << "FAIL: healthy-fleet warmup request failed\n";
    return 1;
  }

  // Open-loop schedule: kTotal requests at a fixed inter-arrival, striped
  // over kSenders threads. A sender that falls behind (the fleet is
  // degraded) keeps the schedule — lateness shows up as latency.
  const int kSenders = 4;
  const int kTotal = 400;
  const double kIntervalMs = 5.0;
  const double kKillAtMs = 600.0;
  const double kRestartAfterMs = 500.0;
  double slo_ms = 1500.0;
  if (const char* s = std::getenv("TAP_CHAOS_P99_SLO_MS")) {
    const double v = std::atof(s);
    if (v > 0) slo_ms = v;
  }

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(kSenders));
  std::atomic<int> errors{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> failover_served{0};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> senders;
  for (int c = 0; c < kSenders; ++c) {
    senders.emplace_back([&, c] {
      util::Rng rng(0xc4a05u + static_cast<std::uint64_t>(c));
      Zipf zipf(bodies.size(), 1.2);
      for (int i = c; i < kTotal; i += kSenders) {
        const auto scheduled =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         i * kIntervalMs));
        std::this_thread::sleep_until(scheduled);
        const std::size_t pick = zipf.sample(rng);
        try {
          net::HttpMessage resp = client.post_plan(keys[pick], bodies[pick]);
          if (resp.status != 200) {
            errors.fetch_add(1);
          } else {
            if (resp.body != reference[pick]) mismatches.fetch_add(1);
            const std::string* served = resp.find_header("x-tap-served");
            if (served != nullptr && *served == "failover")
              failover_served.fetch_add(1);
          }
        } catch (const std::exception&) {
          errors.fetch_add(1);
        }
        latencies[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - scheduled)
                .count());
      }
    });
  }

  // The chaos thread: kill shard 0 outright (BOTH replicas — the client
  // must fall back to the non-owner degraded path), then restart it.
  std::thread chaos([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(kKillAtMs));
    std::printf("chaos: killing shard 0 (both replicas)\n");
    std::fflush(stdout);
    for (ShardReplica& rep : fleet[0]) rep.stop();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(kRestartAfterMs));
    for (ShardReplica& rep : fleet[0]) rep.start();
    std::printf("chaos: restarted shard 0 on ports %d, %d\n",
                fleet[0][0].port, fleet[0][1].port);
    std::fflush(stdout);
  });
  for (auto& t : senders) t.join();
  chaos.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  // Rejoin proof: the restarted primary answers /healthz and serves a
  // shard-0-owned key, byte-identical to the reference, straight from a
  // fresh (cold) service.
  bool rejoined = false;
  std::size_t owned_by_0 = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (client.shard_for(keys[i]) == 0) {
      owned_by_0 = i;
      break;
    }
  }
  try {
    net::HttpConnection probe({"127.0.0.1", fleet[0][0].port}, copts);
    net::HttpMessage health;
    health.method = "GET";
    health.target = "/healthz";
    net::HttpMessage hresp = probe.request(health);
    net::HttpMessage post;
    post.method = "POST";
    post.target = "/plan";
    post.body = bodies[owned_by_0];
    net::HttpMessage presp = probe.request(post);
    rejoined = hresp.status == 200 && presp.status == 200 &&
               presp.body == reference[owned_by_0];
  } catch (const std::exception&) {
    rejoined = false;
  }

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const double p50 = percentile(all, 0.50);
  const double p95 = percentile(all, 0.95);
  const double p99 = percentile(all, 0.99);

  const net::ClientStats cs = client.stats();
  const std::uint64_t breaker_opens =
      obs::registry().counter("net.client.breaker_open")->value();
  const std::uint64_t shed_by_class =
      obs::registry().counter("service.admission.shed_by_class")->value();

  util::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(all.size())});
  table.add_row({"throughput req/s",
                 util::fmt("%.1f", static_cast<double>(all.size()) / wall_s)});
  table.add_row({"latency p50 ms", util::fmt("%.2f", p50)});
  table.add_row({"latency p95 ms", util::fmt("%.2f", p95)});
  table.add_row({"latency p99 ms", util::fmt("%.2f", p99)});
  table.add_row({"p99 SLO ms", util::fmt("%.0f", slo_ms)});
  table.add_row({"errors", std::to_string(errors.load())});
  table.add_row({"byte mismatches", std::to_string(mismatches.load())});
  table.add_row({"client failovers", std::to_string(cs.failovers)});
  table.add_row({"non-owner sends", std::to_string(cs.nonowner_sends)});
  table.add_row({"breaker skips", std::to_string(cs.breaker_skips)});
  table.add_row({"breaker opens", std::to_string(breaker_opens)});
  table.add_row({"failover-served responses",
                 std::to_string(failover_served.load())});
  table.add_row({"shed by class", std::to_string(shed_by_class)});
  table.print(std::cout);
  std::cout << "\n";

  // Stable one-line facts CI greps (chaos-smoke).
  std::printf("chaos: errors %d\n", errors.load());
  std::printf("chaos: failovers %llu\n",
              static_cast<unsigned long long>(cs.failovers));
  if (rejoined) std::printf("chaos: restarted shard rejoined and served\n");

  bench::BenchReporter reporter("service_chaos");
  reporter.add("requests", static_cast<double>(all.size()));
  reporter.add("errors", errors.load());
  reporter.add("byte_mismatches", mismatches.load());
  reporter.add("failovers", static_cast<double>(cs.failovers));
  reporter.add("nonowner_sends", static_cast<double>(cs.nonowner_sends));
  reporter.add("breaker_opens", static_cast<double>(breaker_opens));
  reporter.add("failover_served", failover_served.load());
  reporter.add("latency_p50_ms", p50);
  reporter.add("latency_p95_ms", p95);
  reporter.add("latency_p99_ms", p99);
  reporter.add("p99_slo_ms", slo_ms);
  reporter.note("mix", "2 shards x 2 replicas, shard 0 killed+restarted "
                       "mid-run, open-loop 200 req/s under net faults");

  for (auto& slot : fleet)
    for (ShardReplica& rep : slot) rep.stop();

  bool ok = true;
  if (errors.load() > 0) {
    std::cerr << "FAIL: " << errors.load() << " client-visible errors\n";
    ok = false;
  }
  if (mismatches.load() > 0) {
    std::cerr << "FAIL: " << mismatches.load()
              << " responses differed from the healthy-fleet reference\n";
    ok = false;
  }
  if (cs.failovers == 0) {
    std::cerr << "FAIL: no client failovers — the kill was not felt\n";
    ok = false;
  }
  if (p99 > slo_ms) {
    std::cerr << "FAIL: p99 " << util::fmt("%.2f", p99) << " ms above the "
              << util::fmt("%.0f", slo_ms) << " ms SLO\n";
    ok = false;
  }
  if (!rejoined) {
    std::cerr << "FAIL: restarted shard did not rejoin and serve\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tap;
  if (argc > 1 && std::strcmp(argv[1], "--chaos") == 0) return run_chaos();
  bench::header("Plan-serving tier under Zipf-skewed closed-loop load",
                "networked serving (ISSUE 7)");

  const std::vector<service::ModelSpec> mix = request_mix();
  std::vector<std::string> bodies;
  for (const auto& spec : mix)
    bodies.push_back(service::model_spec_to_json(spec));

  service::PlannerService svc;
  net::PlanHandler handler(&svc, {});
  net::HttpServerOptions sopts;
  sopts.connection_threads = 8;
  net::HttpServer server(
      [&handler](const net::HttpMessage& r) { return handler.handle(r); },
      sopts);
  server.start();

  const int kClients = 4;
  const int kRequestsPerClient = 100;
  const double kZipfS = 1.2;
  const int kRounds = 3;
  const double kMaxOverhead = 0.02;  // recorder-on may cost at most 2%

  // Warmup: populate the plan cache (the four searches happen here) and
  // fault in every connection-path code page, so the measured legs
  // compare recorder cost, not cold-start cost.
  run_load(server, bodies, kClients, kRequestsPerClient, kZipfS,
           /*seed_salt=*/0);

  std::vector<double> all;  // latencies across every measured leg
  int total_errors = 0;
  double best_off = 0.0, best_on = 0.0;
  std::uint64_t salt = 1;
  auto measure_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const bool on : {false, true}) {
        handler.recorder().set_enabled(on);
        const LoadResult leg = run_load(server, bodies, kClients,
                                        kRequestsPerClient, kZipfS, salt++);
        total_errors += leg.errors;
        all.insert(all.end(), leg.latencies.begin(), leg.latencies.end());
        (on ? best_on : best_off) =
            std::max(on ? best_on : best_off, leg.throughput());
      }
    }
    handler.recorder().set_enabled(true);
  };
  measure_rounds(kRounds);
  if (best_on < (1.0 - kMaxOverhead) * best_off) {
    // Borderline: one retry with fresh interleaved legs before failing —
    // best-of over more legs converges on the true (noise-free) rate.
    std::cout << "recorder overhead above bar, retrying with " << kRounds
              << " more rounds\n";
    measure_rounds(kRounds);
  }
  server.stop();
  std::sort(all.begin(), all.end());

  const auto stats = svc.stats();
  const double total = static_cast<double>(all.size());
  const double hit_ratio =
      stats.requests > 0 ? static_cast<double>(stats.cache_hits) /
                               static_cast<double>(stats.requests)
                         : 0.0;
  const double shed_rate =
      stats.requests > 0 ? static_cast<double>(stats.shed) /
                               static_cast<double>(stats.requests)
                         : 0.0;
  const double p50 = percentile(all, 0.50);
  const double p95 = percentile(all, 0.95);
  const double p99 = percentile(all, 0.99);
  const double overhead_pct =
      best_off > 0 ? (best_off - best_on) / best_off * 100.0 : 0.0;

  util::Table table({"metric", "value"});
  table.add_row({"requests", util::fmt("%.0f", total)});
  table.add_row({"throughput req/s (recorder off)",
                 util::fmt("%.1f", best_off)});
  table.add_row({"throughput req/s (recorder on)",
                 util::fmt("%.1f", best_on)});
  table.add_row({"recorder overhead %", util::fmt("%.2f", overhead_pct)});
  table.add_row({"latency p50 ms", util::fmt("%.2f", p50)});
  table.add_row({"latency p95 ms", util::fmt("%.2f", p95)});
  table.add_row({"latency p99 ms", util::fmt("%.2f", p99)});
  table.add_row({"cache-hit ratio", util::fmt("%.3f", hit_ratio)});
  table.add_row({"shed rate", util::fmt("%.3f", shed_rate)});
  table.add_row({"errors", std::to_string(total_errors)});
  table.print(std::cout);
  std::cout << "\n";

  bench::BenchReporter reporter("service_load");
  reporter.add("requests", total);
  reporter.add("throughput_rps", best_on);
  reporter.add("recorder_off_rps", best_off);
  reporter.add("recorder_on_rps", best_on);
  reporter.add("recorder_overhead_pct", overhead_pct);
  reporter.add("latency_p50_ms", p50);
  reporter.add("latency_p95_ms", p95);
  reporter.add("latency_p99_ms", p99);
  reporter.add("cache_hit_ratio", hit_ratio);
  reporter.add("shed_rate", shed_rate);
  reporter.add("errors", total_errors);
  reporter.note("mix", "4 t5 specs, zipf s=1.2, 4 closed-loop clients, "
                       "interleaved recorder off/on legs");

  // The bars CI can hold: every request answered, the Zipf-hot mix
  // overwhelmingly cache-served after the warmup misses, and the flight
  // recorder invisible at the throughput level.
  if (total_errors > 0) {
    std::cerr << "FAIL: " << total_errors << " request errors\n";
    return 1;
  }
  if (hit_ratio < 0.9) {
    std::cerr << "FAIL: cache-hit ratio " << hit_ratio
              << " below 0.9 under a 4-spec Zipf mix\n";
    return 1;
  }
  if (best_on < (1.0 - kMaxOverhead) * best_off) {
    std::cerr << "FAIL: flight-recorder overhead "
              << util::fmt("%.2f", overhead_pct) << "% exceeds "
              << kMaxOverhead * 100.0 << "% (best on " << best_on
              << " req/s vs best off " << best_off << " req/s)\n";
    return 1;
  }
  return 0;
}
