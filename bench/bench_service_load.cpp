// Networked plan-serving load bench (ISSUE 7): a closed-loop driver
// hammers one in-process tap_serve stack (PlannerService + PlanHandler +
// HttpServer on an ephemeral port) with a Zipf-skewed mix of plan
// requests over persistent keep-alive connections — the canonical
// serving-tier shape, where a few hot architectures dominate and the
// cache tier should absorb them.
//
// Reported: sustained throughput, latency p50/p95/p99, cache-hit ratio,
// and shed rate; the figures land in BENCH_service_load.json when
// TAP_BENCH_JSON is set (CI's bench-smoke artifact path). The driver is
// deterministic (util::Rng, fixed seeds); wall-clock figures of course
// are not.
#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "net/http_server.h"
#include "net/plan_client.h"
#include "net/plan_handler.h"
#include "service/planner_service.h"
#include "service/wire.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace tap;

/// The request mix: small fixed-mesh problems (search cost stays modest,
/// which keeps the bench about the serving tier, not the planner).
std::vector<service::ModelSpec> request_mix() {
  std::vector<service::ModelSpec> mix;
  for (const auto& [layers, dp, tp] :
       {std::tuple<int, int, int>{2, 2, 4}, {2, 1, 8}, {4, 2, 4}, {4, 4, 2}}) {
    service::ModelSpec spec;
    spec.model = "t5";
    spec.layers = layers;
    spec.nodes = 1;
    spec.gpus = 8;
    spec.dp = dp;
    spec.tp = tp;
    mix.push_back(spec);
  }
  return mix;
}

/// Zipf(s) sampler over [0, n) via inverse CDF of precomputed weights.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / total;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
  }

  std::size_t sample(util::Rng& rng) const {
    const double u = rng.next_double();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  using namespace tap;
  bench::header("Plan-serving tier under Zipf-skewed closed-loop load",
                "networked serving (ISSUE 7)");

  const std::vector<service::ModelSpec> mix = request_mix();
  std::vector<std::string> bodies;
  for (const auto& spec : mix)
    bodies.push_back(service::model_spec_to_json(spec));

  service::PlannerService svc;
  net::PlanHandler handler(&svc, {});
  net::HttpServerOptions sopts;
  sopts.connection_threads = 8;
  net::HttpServer server(
      [&handler](const net::HttpMessage& r) { return handler.handle(r); },
      sopts);
  server.start();

  const int kClients = 4;
  const int kRequestsPerClient = 100;
  const double kZipfS = 1.2;

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int> errors(kClients, 0);
  util::Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(0x5eedu + static_cast<std::uint64_t>(c));
      Zipf zipf(mix.size(), kZipfS);
      net::HttpConnection conn({"127.0.0.1", server.bound_port()}, {});
      net::HttpMessage post;
      post.method = "POST";
      post.target = "/plan";
      for (int i = 0; i < kRequestsPerClient; ++i) {
        post.body = bodies[zipf.sample(rng)];
        util::Stopwatch sw;
        try {
          net::HttpMessage resp = conn.request(post);
          if (resp.status != 200) ++errors[c];
        } catch (const net::HttpClientError&) {
          ++errors[c];
        }
        latencies[c].push_back(sw.elapsed_millis());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s = wall.elapsed_seconds();
  server.stop();

  std::vector<double> all;
  int total_errors = 0;
  for (int c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    total_errors += errors[c];
  }
  std::sort(all.begin(), all.end());

  const auto stats = svc.stats();
  const double total = static_cast<double>(all.size());
  const double throughput = wall_s > 0 ? total / wall_s : 0.0;
  const double hit_ratio =
      stats.requests > 0 ? static_cast<double>(stats.cache_hits) /
                               static_cast<double>(stats.requests)
                         : 0.0;
  const double shed_rate =
      stats.requests > 0 ? static_cast<double>(stats.shed) /
                               static_cast<double>(stats.requests)
                         : 0.0;
  const double p50 = percentile(all, 0.50);
  const double p95 = percentile(all, 0.95);
  const double p99 = percentile(all, 0.99);

  util::Table table({"metric", "value"});
  table.add_row({"requests", util::fmt("%.0f", total)});
  table.add_row({"wall s", util::fmt("%.2f", wall_s)});
  table.add_row({"throughput req/s", util::fmt("%.1f", throughput)});
  table.add_row({"latency p50 ms", util::fmt("%.2f", p50)});
  table.add_row({"latency p95 ms", util::fmt("%.2f", p95)});
  table.add_row({"latency p99 ms", util::fmt("%.2f", p99)});
  table.add_row({"cache-hit ratio", util::fmt("%.3f", hit_ratio)});
  table.add_row({"shed rate", util::fmt("%.3f", shed_rate)});
  table.add_row({"errors", std::to_string(total_errors)});
  table.print(std::cout);
  std::cout << "\n";

  bench::BenchReporter reporter("service_load");
  reporter.add("requests", total);
  reporter.add("throughput_rps", throughput);
  reporter.add("latency_p50_ms", p50);
  reporter.add("latency_p95_ms", p95);
  reporter.add("latency_p99_ms", p99);
  reporter.add("cache_hit_ratio", hit_ratio);
  reporter.add("shed_rate", shed_rate);
  reporter.add("errors", total_errors);
  reporter.note("mix", "4 t5 specs, zipf s=1.2, 4 closed-loop clients");

  // The bars CI can hold: every request answered, and the Zipf-hot mix
  // must be overwhelmingly cache-served after the first misses.
  if (total_errors > 0) {
    std::cerr << "FAIL: " << total_errors << " request errors\n";
    return 1;
  }
  if (hit_ratio < 0.9) {
    std::cerr << "FAIL: cache-hit ratio " << hit_ratio
              << " below 0.9 under a 4-spec Zipf mix\n";
    return 1;
  }
  return 0;
}
