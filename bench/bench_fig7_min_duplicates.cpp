// Fig. 7: tuning minDuplicates for the graph pruning algorithm.
// Reports the number of unique subgraphs found and the pruning runtime for
// T5-large and a 152-layer 100K-class ResNet across thresholds. The
// paper's findings: threshold 1 = unpruned (thousands of nodes); from 2
// on, the count collapses and stays stable; pruning takes seconds for
// T5-large and well under a second for the ResNet.
#include "bench_common.h"
#include "pruning/prune.h"
#include "util/stopwatch.h"

int main() {
  using namespace tap;
  bench::header("Fig. 7 — minDuplicates sweep", "paper Fig. 7");

  struct Row {
    const char* name;
    Graph graph;
  };
  models::ResNetConfig rn = models::resnet152(100'000);
  Row rows[] = {
      {"T5-large", models::build_transformer(models::t5_large())},
      {"ResNet152-100K", models::build_resnet(rn)},
  };

  util::Table table({"model", "minDuplicates", "unique subgraphs",
                     "max fold", "prune ms"});
  for (Row& row : rows) {
    ir::TapGraph tg = ir::lower(row.graph);
    for (int t : {1, 2, 3, 4, 6, 8, 12, 16}) {
      pruning::PruneOptions opts;
      opts.min_duplicate = t;
      util::Stopwatch sw;
      pruning::PruneResult pr = pruning::prune_graph(tg, opts);
      table.add_row({row.name, std::to_string(t),
                     std::to_string(pr.unique_subgraphs()),
                     std::to_string(pr.max_multiplicity()),
                     util::fmt("%.1f", sw.elapsed_millis())});
    }
  }
  table.print(std::cout);
  std::cout << "\nThreshold 1 leaves the graph unpruned; thresholds 2..16 "
               "find a stable handful of unique blocks — the threshold is "
               "robust (paper: \"insensitive to different thresholds\").\n";
  return 0;
}
