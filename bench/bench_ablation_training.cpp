// Ablation — §4.8's orthogonal training techniques composed with TAP's
// plan: AMP, activation recomputation, ZeRO-1, and all three together, on
// a hybrid-mesh T5 across 2x8 GPUs.
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Ablation — AMP / recompute / ZeRO-1 on TAP's plan",
                "paper §4.8");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  bench::Workload w = bench::t5_workload(24);

  core::TapOptions topts;
  topts.cluster = cluster;
  auto tap = core::auto_parallel_best_mesh(w.tg, topts);
  std::printf("TAP mesh [%d, %d]\n", tap.best_plan.dp_replicas,
              tap.best_plan.num_shards);

  util::Table table({"techniques", "iter ms", "per-GPU mem", "activations",
                     "optimizer"});
  auto row = [&](const char* name, const cost::TrainingOptions& t) {
    sim::SimOptions opts;
    opts.training = t;
    auto b = sim::simulate_step(w.tg, tap.routed, tap.best_plan.num_shards,
                                cluster, opts);
    table.add_row(
        {name, bench::ms(b.iteration_s),
         util::human_bytes(static_cast<double>(b.memory.total())),
         util::human_bytes(static_cast<double>(b.memory.activation_bytes)),
         util::human_bytes(static_cast<double>(b.memory.optimizer_bytes))});
  };
  row("baseline", {});
  cost::TrainingOptions amp;
  amp.amp = true;
  row("+AMP", amp);
  cost::TrainingOptions rc;
  rc.recompute = true;
  row("+recompute", rc);
  cost::TrainingOptions z;
  z.zero1 = true;
  row("+ZeRO-1", z);
  cost::TrainingOptions all;
  all.amp = true;
  all.recompute = true;
  all.zero1 = true;
  row("all three", all);
  table.print(std::cout);
  std::cout << "\nAMP/recompute/ZeRO are graph- or optimizer-level passes "
               "orthogonal to the sharding plan (§4.8) — TAP composes with "
               "each without re-searching.\n";
  return 0;
}
