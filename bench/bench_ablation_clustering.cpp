// Ablation (§4.2 / DESIGN.md decision 1): what does the coarse GraphNode
// IR buy before any folding? Runs TAP's search on the scope-clustered IR
// vs the op-level IR (cluster_by_scope = false) and compares graph sizes,
// candidate counts and search time.
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Ablation — name-scope clustering on/off", "paper §4.2");

  util::Table table({"IR", "GraphNodes", "weighted", "candidates",
                     "nodes visited", "search ms"});
  Graph g = models::build_transformer(models::t5_with_layers(8));

  for (bool cluster : {true, false}) {
    ir::LoweringOptions lop;
    lop.cluster_by_scope = cluster;
    ir::TapGraph tg = ir::lower(g, lop);
    core::TapOptions topts;
    topts.num_shards = 8;
    auto r = core::auto_parallel(tg, topts);
    table.add_row({cluster ? "scope-clustered (TAP)" : "op-level (kx finer)",
                   std::to_string(tg.num_nodes()),
                   std::to_string(tg.weight_nodes().size()),
                   std::to_string(r.candidate_plans),
                   std::to_string(r.nodes_visited),
                   util::fmt("%.1f", r.search_seconds * 1e3)});
  }
  table.print(std::cout);
  std::cout << "\nClustering shrinks the searchable graph by the paper's C "
               "factor before pruning even starts; the op-level IR pays "
               "for every transpose and dropout during routing.\n";
  return 0;
}
