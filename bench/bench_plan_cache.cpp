// PlannerService plan-cache bench: cold search vs warm memory-tier hit vs
// warm disk-tier hit vs N concurrent duplicate requests (single-flight),
// on the T5 / MoE / ResNet workloads. The acceptance bar is a >= 10x
// warm-over-cold speedup on T5 — a cache hit skips the family search
// entirely and pays only fingerprinting + deterministic prune/route.
// The bar is enforced by the exit code (CI's bench-smoke job fails on a
// regression), and the figures land in BENCH_plan_cache.json when
// TAP_BENCH_JSON is set.
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/planner_service.h"
#include "util/stopwatch.h"

namespace {

// A Workload owns its Graph and a TapGraph lowered from it, so it must be
// constructed in place (never moved); each case carries a builder instead.
struct CacheCase {
  std::string label;
  std::function<tap::Graph()> build;
};

}  // namespace

int main() {
  using namespace tap;
  namespace fs = std::filesystem;
  bench::header("PlannerService plan cache — cold vs warm vs coalesced",
                "service subsystem");

  const std::vector<CacheCase> cases = {
      {"T5 (8+8 layers)",
       [] {
         return models::build_transformer(models::t5_with_layers(8));
       }},
      {"WideNet MoE (4 layers)",
       [] {
         models::MoeConfig cfg = models::widenet();
         cfg.num_layers = 4;
         return models::build_moe_transformer(cfg);
       }},
      {"ResNet-50",
       [] { return models::build_resnet(models::resnet50(1024)); }},
  };

  core::TapOptions opts;
  opts.cluster = cost::ClusterSpec::v100_cluster(2);
  opts.num_shards = 8;
  opts.dp_replicas = 2;
  opts.threads = 1;

  const std::string disk_dir =
      (fs::temp_directory_path() / "tap_bench_plan_cache").string();
  fs::remove_all(disk_dir);

  util::Table table({"model", "cold ms", "warm ms", "disk ms",
                     "8x dup ms", "speedup", "searches"});
  bench::BenchReporter report("plan_cache");
  double t5_speedup = 0.0;

  for (const CacheCase& c : cases) {
    bench::Workload workload(c.build());
    service::ServiceOptions sopts;
    sopts.cache.disk_dir = disk_dir;
    sopts.request_threads = 1;
    service::PlannerService svc(sopts);
    const service::PlanRequest req{&workload.tg, opts, false};

    util::Stopwatch sw;
    svc.plan(req);
    const double cold_s = sw.elapsed_seconds();

    sw.restart();
    svc.plan(req);
    const double warm_s = sw.elapsed_seconds();

    // Fresh service over the same directory: disk tier only.
    service::PlannerService svc_disk(sopts);
    sw.restart();
    svc_disk.plan(req);
    const double disk_s = sw.elapsed_seconds();

    // 8 concurrent duplicates against an empty cache: single-flight means
    // ~one cold search amortized over all of them.
    service::ServiceOptions mem_opts;
    mem_opts.request_threads = 2;
    service::PlannerService svc_dup(mem_opts);
    sw.restart();
    {
      std::vector<std::thread> clients;
      for (int i = 0; i < 8; ++i)
        clients.emplace_back([&] { svc_dup.plan(req); });
      for (std::thread& t : clients) t.join();
    }
    const double dup_s = sw.elapsed_seconds();

    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    if (c.label.rfind("T5", 0) == 0) t5_speedup = speedup;
    table.add_row({c.label, bench::ms(cold_s), bench::ms(warm_s),
                   bench::ms(disk_s), bench::ms(dup_s),
                   util::fmt("%.0fx", speedup),
                   std::to_string(svc_dup.stats().searches)});

    const std::string slug =
        c.label.rfind("T5", 0) == 0      ? "t5"
        : c.label.rfind("Wide", 0) == 0  ? "moe"
                                         : "resnet50";
    report.add(slug + ".cold_ms", cold_s * 1e3);
    report.add(slug + ".warm_ms", warm_s * 1e3);
    report.add(slug + ".disk_ms", disk_s * 1e3);
    report.add(slug + ".dup8_ms", dup_s * 1e3);
    report.add(slug + ".warm_speedup", speedup);
    report.add(slug + ".searches",
               static_cast<double>(svc_dup.stats().searches));
  }
  table.print(std::cout);
  report.add("t5.speedup_bar", 10.0);
  report.note("gate", "exit 1 when t5.warm_speedup < 10");

  std::cout << "\nA warm hit skips the family search and pays only "
               "fingerprint + prune + route; 8 duplicates coalesce into "
               "the single search shown in the last column."
            << (t5_speedup >= 10.0
                    ? util::fmt(" T5 warm speedup %.0fx meets the >=10x "
                                "bar.\n",
                                t5_speedup)
                    : util::fmt(" WARNING: T5 warm speedup %.1fx is below "
                                "the 10x bar.\n",
                                t5_speedup));
  fs::remove_all(disk_dir);
  // The 10x bar is the CI gate: bench-smoke fails when a cache-path
  // regression erodes the warm-hit speedup.
  return t5_speedup >= 10.0 ? 0 : 1;
}
