// Fig. 8: training time per iteration with and without XLA, ResNet-50 with
// a growing classification layer. The paper finds the improvement
// INCONSISTENT (between -9% and +1% on T5; similar on ResNet): fusion
// amortizes kernel launches but the inserted communication nodes break
// operator clusters and hinder comm/compute overlap.
#include "bench_common.h"
#include "fusion/fusion.h"

int main() {
  using namespace tap;
  bench::header("Fig. 8 — XLA on/off, ResNet-50 class sweep",
                "paper Fig. 8");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_node();
  util::Table table({"classes", "kernels fused", "iter ms (no XLA)",
                     "iter ms (XLA)", "delta %"});
  for (std::int64_t classes : {1'000, 10'000, 50'000, 100'000}) {
    bench::Workload w = bench::resnet_workload(classes);
    auto fusion_info = fusion::fuse_elementwise(w.graph);

    core::TapOptions topts;
    topts.num_shards = 8;
    topts.cluster = cluster;
    auto plan = core::auto_parallel(w.tg, topts);

    sim::SimOptions off;
    sim::SimOptions on;
    on.xla_fusion = true;
    auto b_off = sim::simulate_step(w.tg, plan.routed, 8, cluster, off);
    auto b_on = sim::simulate_step(w.tg, plan.routed, 8, cluster, on);
    double delta =
        (b_on.iteration_s - b_off.iteration_s) / b_off.iteration_s * 100.0;
    table.add_row({std::to_string(classes),
                   std::to_string(fusion_info.kernels_saved),
                   bench::ms(b_off.iteration_s), bench::ms(b_on.iteration_s),
                   util::fmt("%+.1f", delta)});
  }
  table.print(std::cout);
  std::cout << "\nFusion saves launches (compute shrinks) but forces "
               "collectives to synchronize with the compute stream; the net "
               "effect is small and inconsistent, which is why the paper "
               "disabled XLA for the remaining experiments.\n";
  return 0;
}
