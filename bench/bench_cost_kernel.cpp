// Batched cost-kernel bench (ISSUE 6): scalar reference vs AVX2 SPMD
// kernel over identical CommEventBatches filled from real routed T5
// candidates, plus the end-to-end effect on a T5 family search under the
// forced-scalar vs the active kernel.
//
// The acceptance bar is a >= 2x AVX2-over-scalar speedup on the batch
// kernel itself, enforced by the exit code (CI's bench-smoke job fails on
// a regression) whenever the host can run the AVX2 kernel; the figures —
// including the end-to-end search times — land in BENCH_cost_kernel.json
// when TAP_BENCH_JSON is set.
#include <algorithm>

#include "bench_common.h"
#include "cost/comm_batch.h"
#include "sharding/plan.h"
#include "sharding/routing.h"
#include "util/stopwatch.h"

namespace {

/// Best-of-`rounds` nanoseconds per kernel pass over the batch.
double ns_per_pass(tap::cost::CostKernel kernel,
                   const tap::cost::CommEventBatch& batch,
                   const tap::cost::ClusterSpec& cluster) {
  using namespace tap;
  constexpr int kReps = 4000;
  constexpr int kRounds = 5;
  cost::PlanCost out[cost::kCostBatchWidth];
  double best_s = 1e30;
  double sink = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    util::Stopwatch sw;
    for (int i = 0; i < kReps; ++i) {
      cost::comm_cost_batch_with(kernel, batch, cluster, out);
      sink += out[0].backward_comm_s;  // keep the pass observable
    }
    best_s = std::min(best_s, sw.elapsed_seconds());
  }
  if (sink < 0.0) std::cout << "";  // never taken; defeats DCE
  return best_s / kReps * 1e9;
}

/// Best-of-5 wall seconds for one full T5 family search (first run also
/// warms the lazily built graph caches).
double t5_search_seconds(const tap::ir::TapGraph& tg,
                         const tap::core::TapOptions& opts) {
  double best = 1e30;
  for (int round = 0; round < 5; ++round) {
    tap::util::Stopwatch sw;
    const auto r = tap::core::auto_parallel(tg, opts);
    TAP_CHECK(r.routed.valid) << r.routed.error;
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main() {
  using namespace tap;
  bench::header("SoA batch cost kernel — scalar vs AVX2",
                "cost subsystem, ISSUE 6");
  bench::BenchReporter report("cost_kernel");

  const bool avx2 = cost::avx2_kernel_compiled() &&
                    cost::active_cost_kernel() == cost::CostKernel::kAvx2;
  report.note("active_kernel",
              cost::cost_kernel_name(cost::active_cost_kernel()));

  // A full batch of real candidates: the default-DP T5 route repeated
  // across all lanes (event mix and depth match what FamilySearch
  // stages; lane content does not affect kernel timing).
  bench::Workload w = bench::t5_workload(4);
  const cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  sharding::ShardingPlan plan = sharding::default_plan(w.tg, 8);
  const sharding::RoutedPlan routed = sharding::route_plan(w.tg, plan);
  TAP_CHECK(routed.valid) << routed.error;
  cost::CommEventBatch batch;
  batch.reset();
  for (int l = 0; l < cost::kCostBatchWidth; ++l)
    batch.add_candidate(routed, 8, {});

  const double scalar_ns =
      ns_per_pass(cost::CostKernel::kScalar, batch, cluster);
  report.add("scalar_ns_per_batch", scalar_ns);
  std::cout << "batch of " << cost::kCostBatchWidth << " x "
            << routed.comms.size() << " events\n";
  std::cout << "scalar kernel: " << util::fmt("%.0f", scalar_ns)
            << " ns/batch\n";

  double kernel_speedup = 0.0;
  if (avx2) {
    const double avx2_ns =
        ns_per_pass(cost::CostKernel::kAvx2, batch, cluster);
    kernel_speedup = scalar_ns / avx2_ns;
    report.add("avx2_ns_per_batch", avx2_ns);
    report.add("kernel_speedup_x", kernel_speedup);
    std::cout << "avx2 kernel:   " << util::fmt("%.0f", avx2_ns)
              << " ns/batch  (" << util::fmt("%.2f", kernel_speedup)
              << "x)\n";
  } else {
    report.note("gate", "skipped: AVX2 kernel unavailable on this host");
    std::cout << "avx2 kernel:   unavailable (gate skipped)\n";
  }

  // End-to-end: the same T5 family search under each kernel. Reported,
  // not gated — wall time here is dominated by routing, so the kernel
  // win is real but diluted.
  core::TapOptions opts;
  opts.cluster = cluster;
  opts.num_shards = 8;
  opts.dp_replicas = 2;
  opts.threads = 1;
  cost::set_cost_kernel_for_testing(cost::CostKernel::kScalar);
  const double scalar_search_s = t5_search_seconds(w.tg, opts);
  cost::set_cost_kernel_for_testing(std::nullopt);
  const double active_search_s = t5_search_seconds(w.tg, opts);
  report.add("t5_search_scalar_ms", scalar_search_s * 1e3);
  report.add("t5_search_active_ms", active_search_s * 1e3);
  report.add("t5_search_speedup_x", scalar_search_s / active_search_s);
  std::cout << "T5 (4 layers) search: scalar "
            << bench::ms(scalar_search_s) << " ms, active kernel "
            << bench::ms(active_search_s) << " ms ("
            << util::fmt("%.2f", scalar_search_s / active_search_s)
            << "x)\n";

  report.write();
  if (avx2 && kernel_speedup < 2.0) {
    std::cerr << "REGRESSION: AVX2 batch kernel only "
              << util::fmt("%.2f", kernel_speedup)
              << "x over scalar (gate: >= 2x)\n";
    return 1;
  }
  return 0;
}
