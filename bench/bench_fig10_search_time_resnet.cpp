// Fig. 10: end-to-end search time scaling the ResNet-50 classification
// width (the e-commerce scenario of Fig. 3a). Alpa-like shortlisted to 5
// candidate plans per the paper. Paper: TAP is 103x-162x faster.
#include "baselines/alpa_like.h"
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Fig. 10 — search time vs ResNet classifier width",
                "paper Fig. 10");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_node();
  util::Table table({"classes", "params", "TAP ms", "TAP candidates",
                     "Alpa-like ms", "Alpa + profiling s", "speedup (wall)",
                     "speedup (e2e)"});
  for (std::int64_t classes : {1'000, 10'000, 50'000, 100'000}) {
    bench::Workload w = bench::resnet_workload(classes);

    core::TapOptions topts;
    topts.num_shards = 8;
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);

    baselines::AlpaOptions al;
    al.num_shards = 8;
    al.max_candidate_plans = 5;  // paper's shortlist for ResNet
    auto alpa = baselines::alpa_like_search(w.graph, cluster, al);

    table.add_row(
        {std::to_string(classes),
         util::human_count(static_cast<double>(w.graph.total_params())),
         util::fmt("%.1f", tap.search_seconds * 1e3),
         std::to_string(tap.candidate_plans),
         util::fmt("%.1f", alpa.search_seconds * 1e3),
         util::fmt("%.1f", alpa.search_seconds +
                               alpa.simulated_profiling_seconds),
         util::fmt("%.0fx", alpa.search_seconds / tap.search_seconds),
         util::fmt("%.0fx", (alpa.search_seconds +
                             alpa.simulated_profiling_seconds) /
                                tap.search_seconds)});
  }
  table.print(std::cout);
  std::cout << "\nWidth scaling leaves the graph structure unchanged, so "
               "TAP's search time is flat; the Alpa-like baseline still "
               "pays per-op profiling + the V^2 stage DP (paper: two orders "
               "of magnitude).\n";
  return 0;
}
