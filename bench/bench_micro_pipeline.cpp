// Google-benchmark micro benches for the TAP pipeline stages: lowering,
// pruning, per-candidate subgraph routing, full-graph routing, cost
// queries, and one simulated training step. These quantify the per-stage
// costs behind Table 2's complexity rows.
#include <benchmark/benchmark.h>

#include "core/tap.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "pruning/prune.h"
#include "rewrite/rewrite.h"
#include "runtime/autodiff.h"
#include "runtime/spmd_interpreter.h"
#include "sim/simulator.h"

namespace {

using namespace tap;

const Graph& t5_graph(int layers) {
  static std::map<int, Graph> cache;
  auto it = cache.find(layers);
  if (it == cache.end()) {
    it = cache
             .emplace(layers, models::build_transformer(
                                  models::t5_with_layers(layers)))
             .first;
  }
  return it->second;
}

const ir::TapGraph& t5_ir(int layers) {
  static std::map<int, ir::TapGraph> cache;
  auto it = cache.find(layers);
  if (it == cache.end()) {
    it = cache.emplace(layers, ir::lower(t5_graph(layers))).first;
  }
  return it->second;
}

void BM_Lowering(benchmark::State& state) {
  const Graph& g = t5_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::lower(g));
  }
}
BENCHMARK(BM_Lowering)->Arg(4)->Arg(16)->Arg(48);

void BM_Pruning(benchmark::State& state) {
  const ir::TapGraph& tg = t5_ir(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruning::prune_graph(tg));
  }
}
BENCHMARK(BM_Pruning)->Arg(4)->Arg(16)->Arg(48);

void BM_RouteSubgraph(benchmark::State& state) {
  // The per-candidate evaluation: must be independent of model depth.
  const ir::TapGraph& tg = t5_ir(static_cast<int>(state.range(0)));
  pruning::PruneResult pr = pruning::prune_graph(tg);
  const pruning::SubgraphFamily* block = nullptr;
  for (const auto& f : pr.families)
    if (f.representative.find("encoder/block_0") != std::string::npos)
      block = &f;
  sharding::PatternTable table(tg, 8);
  sharding::ShardingPlan plan = sharding::default_plan(tg, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharding::route_subgraph(
        tg, plan, block->member_nodes, sharding::ShardSpec::replicate(),
        &table));
  }
}
BENCHMARK(BM_RouteSubgraph)->Arg(4)->Arg(16)->Arg(48);

void BM_RouteFullGraph(benchmark::State& state) {
  const ir::TapGraph& tg = t5_ir(static_cast<int>(state.range(0)));
  sharding::PatternTable table(tg, 8);
  sharding::ShardingPlan plan = sharding::default_plan(tg, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharding::route_plan(tg, plan, &table));
  }
}
BENCHMARK(BM_RouteFullGraph)->Arg(4)->Arg(16)->Arg(48);

void BM_CommCost(benchmark::State& state) {
  const ir::TapGraph& tg = t5_ir(8);
  auto routed = sharding::route_plan(tg, sharding::default_plan(tg, 8));
  cost::ClusterSpec cluster;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::comm_cost(routed, 8, cluster));
  }
}
BENCHMARK(BM_CommCost);

void BM_AutoParallel(benchmark::State& state) {
  const ir::TapGraph& tg = t5_ir(static_cast<int>(state.range(0)));
  core::TapOptions opts;
  opts.num_shards = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::auto_parallel(tg, opts));
  }
}
BENCHMARK(BM_AutoParallel)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SimulateStep(benchmark::State& state) {
  const ir::TapGraph& tg = t5_ir(8);
  auto routed = sharding::route_plan(tg, sharding::default_plan(tg, 16));
  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_step(tg, routed, 16, cluster));
  }
}
BENCHMARK(BM_SimulateStep);

void BM_RewriteGraph(benchmark::State& state) {
  const Graph& g = t5_graph(8);
  const ir::TapGraph& tg = t5_ir(8);
  auto routed = sharding::route_plan(tg, sharding::default_plan(tg, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::rewrite_graph(g, tg, routed, 8));
  }
}
BENCHMARK(BM_RewriteGraph)->Unit(benchmark::kMillisecond);

void BM_AutodiffTinyTransformer(benchmark::State& state) {
  models::TransformerConfig cfg = models::t5_with_layers(1);
  cfg.name = "bench_tiny";
  cfg.encoder_decoder = false;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.num_heads = 2;
  cfg.vocab = 64;
  cfg.batch = 2;
  cfg.seq_len = 16;
  static Graph g = models::build_transformer(cfg);
  runtime::GradientExecutor exec(g);
  auto feeds = exec.make_feeds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.gradients(feeds));
  }
}
BENCHMARK(BM_AutodiffTinyTransformer)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
