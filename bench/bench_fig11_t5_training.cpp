// Fig. 11: training time per iteration for T5 (batch size 16) as depth
// grows, comparing the best plan TAP discovers against the Alpa-like
// baseline. The blue band of the paper is the spread over the 16 candidate
// plans Alpa evaluates; TAP outputs a single best plan so it has one line.
// Paper shape: Alpa favors pipeline schedules which need less
// communication, giving its plans somewhat higher throughput on deep
// dense transformers.
#include "bench_common.h"
#include "core/pipeline.h"

int main() {
  using namespace tap;
  bench::header("Fig. 11 — T5 iteration time (batch 16)", "paper Fig. 11");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  util::Table table({"layers", "TAP ms", "TAP+pipe ms", "Alpa best ms",
                     "Alpa band min", "Alpa band mean", "Alpa band max"});
  for (int layers : {8, 16, 24}) {
    bench::Workload w = bench::t5_workload(layers);

    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);
    auto tap_step =
        sim::simulate_step(w.tg, tap.routed, cluster.world(), cluster);

    // §4.8 composition: TAP inside 2 pipeline stages (one per node).
    core::PipelineOptions popts;
    popts.stages = 2;
    auto piped = core::auto_parallel_pipelined(w.tg, topts, popts);
    auto stage_step = sim::simulate_step(
        w.tg, piped.inner.routed, piped.inner.best_plan.num_shards, cluster);
    double piped_ms =
        core::pipeline_iteration_estimate(piped, stage_step.iteration_s);

    baselines::AlpaOptions al;
    al.num_shards = cluster.world();
    al.max_candidate_plans = 16;
    al.profile_repeats = 20;  // keep the bench fast
    auto alpa = baselines::alpa_like_search(w.graph, cluster, al);
    bench::AlpaBand band = bench::simulate_alpa_band(w.graph, alpa, cluster);

    table.add_row({std::to_string(layers), bench::ms(tap_step.iteration_s),
                   bench::ms(piped_ms), bench::ms(band.best),
                   bench::ms(band.min), bench::ms(band.mean),
                   bench::ms(band.max)});
  }
  table.print(std::cout);
  std::cout << "\nAlpa-like plans pipeline across nodes, keeping "
               "collectives intra-node — on deep dense transformers their "
               "best plan beats TAP's pure tensor/data-parallel one (paper "
               "§6.3.2); the band is the spread over its evaluated "
               "candidates. The TAP+pipe column composes TAP with 2 manual "
               "pipeline stages (§4.8), recovering the pipelining "
               "advantage on top of TAP's intra-stage plan.\n";
  return 0;
}
