// Fig. 9: end-to-end search time scaling T5 depth (dense transformer).
// TAP (unrestricted candidate space) vs the Alpa-like baseline shortlisted
// to 16 candidate plans, exactly as the paper configured it (§6.3.1).
// The paper reports TAP 21x-67x faster; absolute times are ours, the
// ratio and TAP's flatness in depth are the reproduced shape.
#include "baselines/alpa_like.h"
#include "bench_common.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

int main() {
  using namespace tap;
  bench::header("Fig. 9 — search time vs T5 depth", "paper Fig. 9");
  bench::BenchReporter report("fig9_search_time_t5");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  util::Table table({"layers", "params", "TAP ms", "TAP candidates",
                     "Alpa-like ms", "Alpa + profiling s", "speedup (wall)",
                     "speedup (e2e)"});
  for (int layers : {8, 16, 24, 48}) {
    bench::Workload w = bench::t5_workload(layers);

    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);

    baselines::AlpaOptions al;
    al.num_shards = cluster.world();
    al.max_candidate_plans = 16;  // paper's shortlist for T5
    auto alpa = baselines::alpa_like_search(w.graph, cluster, al);

    table.add_row(
        {std::to_string(layers),
         util::human_count(static_cast<double>(w.graph.total_params())),
         util::fmt("%.1f", tap.search_seconds * 1e3),
         std::to_string(tap.candidate_plans),
         util::fmt("%.1f", alpa.search_seconds * 1e3),
         util::fmt("%.1f", alpa.search_seconds +
                               alpa.simulated_profiling_seconds),
         util::fmt("%.0fx", alpa.search_seconds / tap.search_seconds),
         util::fmt("%.0fx", (alpa.search_seconds +
                             alpa.simulated_profiling_seconds) /
                                tap.search_seconds)});

    const std::string prefix = "t5_" + std::to_string(layers) + "l.";
    report.add(prefix + "tap_ms", tap.search_seconds * 1e3);
    report.add(prefix + "tap_candidates",
               static_cast<double>(tap.candidate_plans));
    report.add(prefix + "alpa_ms", alpa.search_seconds * 1e3);
    report.add(prefix + "speedup_wall",
               alpa.search_seconds / tap.search_seconds);
  }
  table.print(std::cout);
  std::cout << "\nTAP examines ~777 candidates regardless of depth (one "
               "folded block); the Alpa-like search re-profiles and "
               "re-partitions the whole op-level graph, so its time grows "
               "superlinearly (paper: 21x-67x; see EXPERIMENTS.md for our "
               "measured band).\n";

  // --- parallel mesh sweep: threads=1 vs threads=hardware_concurrency ----
  // The sweep's (dp, tp) factorizations are searched concurrently on the
  // planner's ThreadPool; plans and statistics are identical at every
  // thread count (deterministic index-ordered join), only wall time moves.
  std::cout << "\n--- auto_parallel_best_mesh wall time vs threads "
               "(T5, 2x8 GPUs) ---\n";
  std::printf("hardware threads detected: %d%s\n", util::ThreadPool::resolve(0),
              util::ThreadPool::resolve(0) == 1
                  ? " (single core: expect 1.0x, identity still holds)"
                  : "");
  util::Table tt({"layers", "threads=1 ms", "threads=auto ms", "speedup",
                  "identical"});
  for (int layers : {8, 24}) {
    bench::Workload w = bench::t5_workload(layers);
    core::TapOptions seq;
    seq.cluster = cluster;
    seq.threads = 1;
    auto r1 = core::auto_parallel_best_mesh(w.tg, seq);
    core::TapOptions par = seq;
    par.threads = 0;  // hardware_concurrency
    auto rn = core::auto_parallel_best_mesh(w.tg, par);
    const bool same = r1.best_plan.choice == rn.best_plan.choice &&
                      r1.cost.total() == rn.cost.total() &&
                      r1.candidate_plans == rn.candidate_plans;
    tt.add_row({std::to_string(layers), bench::ms(r1.search_seconds),
                bench::ms(rn.search_seconds),
                util::fmt("%.1fx", r1.search_seconds / rn.search_seconds),
                same ? "yes" : "NO"});
    const std::string prefix = "sweep_t5_" + std::to_string(layers) + "l.";
    report.add(prefix + "threads1_ms", r1.search_seconds * 1e3);
    report.add(prefix + "threads_auto_ms", rn.search_seconds * 1e3);
    report.add(prefix + "identical", same ? 1.0 : 0.0);
  }
  tt.print(std::cout);

  // --- Fig. 6-style per-pass breakdown of one pipeline run ---------------
  {
    bench::Workload w = bench::t5_workload(24);
    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    auto r = core::auto_parallel(w.tg, topts);
    std::cout << "\n--- per-pass breakdown, T5-24L tp=16 (Fig. 6 style) "
                 "---\n";
    for (const auto& t : r.pass_timings)
      std::printf("  %-18s %7.2f ms\n", t.pass.c_str(), t.seconds * 1e3);
    std::cout << "(Prune is mesh-independent and hoisted out of the sweep; "
                 "BuildPatternTable is rebuilt per mesh — patterns_for "
                 "filters by divisibility against num_shards and gates the "
                 "dp pattern on the global batch.)\n";
  }

  // --- observability overhead: identical search, tracing off vs on -------
  // The instrumentation is compiled in unconditionally; with no active
  // TraceSession every span guard is one relaxed atomic load, so the "off"
  // column must match seed-era timings within noise.
  {
    bench::Workload w = bench::t5_workload(8);
    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    core::auto_parallel(w.tg, topts);  // warm caches
    util::Stopwatch sw;
    core::auto_parallel(w.tg, topts);
    const double off_s = sw.elapsed_seconds();
    obs::TraceSession session;
    session.start();
    sw.restart();
    core::auto_parallel(w.tg, topts);
    const double on_s = sw.elapsed_seconds();
    session.stop();
    std::printf("\n--- observability overhead (T5-8L, one search) ---\n"
                "  tracing off %.2f ms, tracing on %.2f ms (%.0f events "
                "captured)\n",
                off_s * 1e3, on_s * 1e3,
                static_cast<double>(session.events().size()));
    report.add("obs.tracing_off_ms", off_s * 1e3);
    report.add("obs.tracing_on_ms", on_s * 1e3);
    report.add("obs.events", static_cast<double>(session.events().size()));
  }
  return 0;
}
