// Fig. 9: end-to-end search time scaling T5 depth (dense transformer).
// TAP (unrestricted candidate space) vs the Alpa-like baseline shortlisted
// to 16 candidate plans, exactly as the paper configured it (§6.3.1).
// The paper reports TAP 21x-67x faster; absolute times are ours, the
// ratio and TAP's flatness in depth are the reproduced shape.
#include "baselines/alpa_like.h"
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Fig. 9 — search time vs T5 depth", "paper Fig. 9");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  util::Table table({"layers", "params", "TAP ms", "TAP candidates",
                     "Alpa-like ms", "Alpa + profiling s", "speedup (wall)",
                     "speedup (e2e)"});
  for (int layers : {8, 16, 24, 48}) {
    bench::Workload w = bench::t5_workload(layers);

    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);

    baselines::AlpaOptions al;
    al.num_shards = cluster.world();
    al.max_candidate_plans = 16;  // paper's shortlist for T5
    auto alpa = baselines::alpa_like_search(w.graph, cluster, al);

    table.add_row(
        {std::to_string(layers),
         util::human_count(static_cast<double>(w.graph.total_params())),
         util::fmt("%.1f", tap.search_seconds * 1e3),
         std::to_string(tap.candidate_plans),
         util::fmt("%.1f", alpa.search_seconds * 1e3),
         util::fmt("%.1f", alpa.search_seconds +
                               alpa.simulated_profiling_seconds),
         util::fmt("%.0fx", alpa.search_seconds / tap.search_seconds),
         util::fmt("%.0fx", (alpa.search_seconds +
                             alpa.simulated_profiling_seconds) /
                                tap.search_seconds)});
  }
  table.print(std::cout);
  std::cout << "\nTAP examines ~777 candidates regardless of depth (one "
               "folded block); the Alpa-like search re-profiles and "
               "re-partitions the whole op-level graph, so its time grows "
               "superlinearly (paper: 21x-67x; see EXPERIMENTS.md for our "
               "measured band).\n";
  return 0;
}
