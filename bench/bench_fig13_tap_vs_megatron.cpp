// Fig. 13: the best plan found by TAP vs the expert-engineered Megatron
// plan — per-GPU memory and training speed. Paper shape: TAP's plan is
// more memory-efficient than Megatron while staying within 2.3%-14.8% of
// its training speed.
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Fig. 13 — TAP best plan vs Megatron", "paper Fig. 13");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  util::Table table({"T5 layers", "plan", "iter ms", "per-GPU mem",
                     "weights+opt mem"});
  for (int layers : {12, 24}) {
    bench::Workload w = bench::t5_workload(layers, /*batch=*/16);

    core::TapOptions topts;
    topts.num_shards = cluster.world();
    topts.cluster = cluster;
    auto tap = core::auto_parallel(w.tg, topts);
    auto tap_step =
        sim::simulate_step(w.tg, tap.routed, cluster.world(), cluster);

    auto mg_step = bench::simulate_expert(w, "Megatron", cluster);

    auto row = [&](const char* name, const sim::StepBreakdown& b) {
      table.add_row(
          {std::to_string(layers), name, bench::ms(b.iteration_s),
           util::human_bytes(static_cast<double>(b.memory.total())),
           util::human_bytes(static_cast<double>(b.memory.weight_bytes +
                                                 b.memory.optimizer_bytes))});
    };
    row("TAP best", tap_step);
    row("Megatron", mg_step);
    row("FFN-only", bench::simulate_expert(w, "FFN", cluster));
    row("DP", bench::simulate_expert(w, "DP", cluster));
    double slower = (tap_step.iteration_s - mg_step.iteration_s) /
                    mg_step.iteration_s * 100.0;
    std::printf("layers=%d: TAP vs Megatron speed delta %+.1f%%, memory "
                "ratio %.2fx\n",
                layers, slower,
                static_cast<double>(tap_step.memory.total()) /
                    static_cast<double>(mg_step.memory.total()));
  }
  table.print(std::cout);
  return 0;
}
