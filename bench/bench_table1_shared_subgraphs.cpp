// Table 1: shared subgraphs exist on many neural network models.
// For every row of the paper's table we build the architecture, run TAP's
// lowering + pruning, and report the parameter count and the shared-
// subgraph multiplicity the pruning algorithm discovers, next to the
// paper's numbers.
#include "bench_common.h"
#include "pruning/prune.h"
#include "util/stopwatch.h"

int main() {
  using namespace tap;
  bench::header("Table 1 — shared subgraphs across the model zoo",
                "paper Table 1");

  util::Table table({"Scaling", "Model", "Params (paper)", "Params (ours)",
                     "SS kind", "#SS (paper)", "max fold (ours)",
                     "unique subgraphs", "prune ms"});
  for (const auto& entry : models::table1_zoo()) {
    Graph g = entry.build();
    ir::TapGraph tg = ir::lower(g);
    util::Stopwatch sw;
    pruning::PruneResult pr = pruning::prune_graph(tg);
    double prune_ms = sw.elapsed_millis();
    table.add_row(
        {entry.scaling, entry.model,
         util::human_count(static_cast<double>(entry.paper_params)),
         util::human_count(static_cast<double>(g.total_params())),
         entry.shared_kind, std::to_string(entry.paper_multiplicity),
         std::to_string(pr.max_multiplicity()),
         std::to_string(pr.unique_subgraphs()),
         util::fmt("%.1f", prune_ms)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: every model folds (max fold > 1) and the\n"
               "fold factor tracks the paper's layer counts (exact matches\n"
               "differ where the first block of a stage breaks symmetry —\n"
               "see EXPERIMENTS.md).\n";
  return 0;
}
