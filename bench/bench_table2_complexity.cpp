// Table 2: complexities of selected auto-parallel frameworks, measured
// empirically. We count the work units (operators visited during search,
// including profiling and DP transitions) for FlexFlow-like MCMC,
// Alpa-like two-level search, and TAP while scaling T5 depth. TAP's counts
// must stay (near-)flat while both baselines grow superlinearly.
#include "baselines/alpa_like.h"
#include "baselines/flexflow_like.h"
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Table 2 — empirical search complexity", "paper Table 2");

  util::Table table({"layers", "ops (V)", "FlexFlow ops", "Alpa ops",
                     "TAP nodes visited", "TAP candidates"});
  cost::ClusterSpec cluster = cost::ClusterSpec::v100_node();

  std::int64_t first_alpa = 0, first_tap = 0, last_alpa = 0, last_tap = 0;
  for (int layers : {2, 4, 8}) {
    bench::Workload w = bench::t5_workload(layers);

    baselines::FlexFlowOptions ff;
    ff.num_shards = 8;
    ff.trials = 50;
    auto ffr = baselines::flexflow_like_search(w.graph, cluster, ff);

    baselines::AlpaOptions al;
    al.num_shards = 8;
    al.max_candidate_plans = 4;
    al.intra_op_trials = 4;
    al.profile_repeats = 20;
    auto alr = baselines::alpa_like_search(w.graph, cluster, al);

    core::TapOptions topts;
    topts.num_shards = 8;
    topts.cluster = cluster;
    auto tr = core::auto_parallel(w.tg, topts);

    if (first_alpa == 0) {
      first_alpa = alr.ops_visited;
      first_tap = tr.nodes_visited;
    }
    last_alpa = alr.ops_visited;
    last_tap = tr.nodes_visited;

    table.add_row({std::to_string(layers), std::to_string(w.graph.num_nodes()),
                   std::to_string(ffr.ops_visited),
                   std::to_string(alr.ops_visited),
                   std::to_string(tr.nodes_visited),
                   std::to_string(tr.candidate_plans)});
  }
  table.print(std::cout);
  std::printf(
      "\n2->8 layer growth: Alpa-like %.1fx (superlinear: V^2*L stage DP), "
      "TAP %.1fx (sublinear: folded subgraph search)\n",
      static_cast<double>(last_alpa) / static_cast<double>(first_alpa),
      static_cast<double>(last_tap) / static_cast<double>(first_tap));
  std::printf("analytic rows (paper): FlexFlow O(BV+BE); Alpa O(V^2 L (V + "
              "E^2)); TAP O((E+V)/L)\n");
  return 0;
}
