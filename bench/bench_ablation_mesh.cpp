// Ablation — device-mesh shape sweep (the paper's Example 1 front-end:
// `mesh = [2, 8]`). For a fixed 16-GPU world (2 nodes x 8), factorize into
// every (dp, tp) mesh, run TAP per mesh, and simulate the winner. The
// expected physics: tp confined to the fast intra-node fabric plus dp
// across Ethernet (the classic Megatron deployment) beats both the flat
// 16-way tensor-parallel group and pure 16-way data parallelism for
// deep transformers.
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Ablation — mesh shape sweep on 2x8 GPUs",
                "paper §4.1 Example 1");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  bench::Workload w = bench::t5_workload(12);

  util::Table table({"mesh [dp, tp]", "candidates", "comm cost ms",
                     "sim iter ms", "per-GPU mem"});
  double best_iter = core::kInvalidPlanCost;
  std::string best_mesh;
  for (int tp : {1, 2, 4, 8, 16}) {
    int dp = 16 / tp;
    core::TapOptions opts;
    opts.cluster = cluster;
    opts.num_shards = tp;
    opts.dp_replicas = dp;
    auto r = core::auto_parallel(w.tg, opts);
    if (!r.routed.valid) continue;
    auto step = sim::simulate_step(w.tg, r.routed, tp, cluster);
    table.add_row({sharding::MeshSpec{dp, tp}.to_string(),
                   std::to_string(r.candidate_plans),
                   util::fmt("%.1f", r.cost.total() * 1e3),
                   bench::ms(step.iteration_s),
                   util::human_bytes(
                       static_cast<double>(step.memory.total()))});
    if (step.iteration_s < best_iter) {
      best_iter = step.iteration_s;
      best_mesh = sharding::MeshSpec{dp, tp}.to_string();
    }
  }
  table.print(std::cout);
  std::printf("\nbest simulated mesh: %s — tensor parallelism stays on the "
              "intra-node fabric, gradient sync crosses Ethernet once.\n",
              best_mesh.c_str());

  // And the one-call front-end:
  core::TapOptions opts;
  opts.cluster = cluster;
  auto sweep = core::auto_parallel_best_mesh(w.tg, opts);
  std::printf("auto_parallel_best_mesh picks mesh [%d, %d] at comm cost "
              "%.1f ms (%lld candidates across the sweep, %.1f ms search)\n",
              sweep.best_plan.dp_replicas, sweep.best_plan.num_shards,
              sweep.cost.total() * 1e3,
              static_cast<long long>(sweep.candidate_plans),
              sweep.search_seconds * 1e3);
  return 0;
}
