// Shared helpers for the paper-reproduction bench binaries. Each bench is
// a standalone no-argument executable that prints the rows/series of one
// table or figure from the paper (see DESIGN.md §3 for the index).
//
// When the TAP_BENCH_JSON environment variable names a directory, a
// BenchReporter additionally writes a machine-readable BENCH_<name>.json
// record there — the bench's key figures plus a full obs::dump_json()
// metrics snapshot — which CI's bench-smoke job uploads as artifacts and
// gates regressions on.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/alpa_like.h"
#include "baselines/expert_plans.h"
#include "core/tap.h"
#include "ir/lowering.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace tap::bench {

struct Workload {
  Graph graph;
  ir::TapGraph tg;

  explicit Workload(Graph g) : graph(std::move(g)), tg(ir::lower(graph)) {}
};

inline Workload t5_workload(int layers, std::int64_t batch = 16) {
  models::TransformerConfig cfg = models::t5_with_layers(layers);
  cfg.batch = batch;
  return Workload(models::build_transformer(cfg));
}

inline Workload resnet_workload(std::int64_t classes,
                                std::int64_t batch = 1024) {
  models::ResNetConfig cfg = models::resnet50(classes);
  cfg.batch = batch;
  return Workload(models::build_resnet(cfg));
}

/// Simulated iteration time of a named expert plan ("DP"/"Megatron"/
/// "MHA"/"FFN") on `cluster`.
inline sim::StepBreakdown simulate_expert(const Workload& w,
                                          const std::string& plan_name,
                                          const cost::ClusterSpec& cluster,
                                          const sim::SimOptions& opts = {}) {
  auto plan =
      baselines::named_expert_plan(plan_name, w.tg, cluster.world());
  auto routed = sharding::route_plan(w.tg, plan);
  return sim::simulate_step(w.tg, routed, cluster.world(), cluster, opts);
}

/// Simulated iteration time of one Alpa-like candidate: the intra-op plan
/// runs on a tensor-parallel group of world/stages devices; the pipeline
/// adds the (stages-1)/M bubble over M=8 microbatches.
inline double simulate_alpa_plan(const ir::TapGraph& op_tg,
                                 const sharding::ShardingPlan& plan,
                                 int stages,
                                 const cost::ClusterSpec& cluster) {
  auto routed = sharding::route_plan(op_tg, plan);
  if (!routed.valid) return 0.0;
  sim::StepBreakdown b =
      sim::simulate_step(op_tg, routed, plan.num_shards, cluster);
  constexpr double kMicrobatches = 8.0;
  return b.iteration_s * (1.0 + (stages - 1) / kMicrobatches);
}

/// min/mean/max simulated iteration time over every candidate the
/// Alpa-like search evaluated (the paper's blue variance band), plus the
/// time of the plan it actually selected.
struct AlpaBand {
  double best = 0.0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

inline AlpaBand simulate_alpa_band(const Graph& g,
                                   const baselines::BaselineSearchResult& r,
                                   const cost::ClusterSpec& cluster) {
  AlpaBand band;
  if (!r.found) return band;
  ir::LoweringOptions lop;
  lop.cluster_by_scope = false;
  ir::TapGraph op_tg = ir::lower(g, lop);
  band.best = simulate_alpa_plan(op_tg, r.best_plan, r.best_stages, cluster);
  band.min = core::kInvalidPlanCost;
  int n = 0;
  for (const auto& cand : r.evaluated) {
    double t = simulate_alpa_plan(op_tg, cand.plan, cand.stages, cluster);
    if (t <= 0.0) continue;
    band.min = std::min(band.min, t);
    band.max = std::max(band.max, t);
    band.mean += t;
    ++n;
  }
  if (n > 0) band.mean /= n;
  return band;
}

inline std::string ms(double seconds) {
  return util::fmt("%.1f", seconds * 1e3);
}

inline void header(const std::string& what, const std::string& paper_ref) {
  std::cout << "=== " << what << " (" << paper_ref << ") ===\n";
}

/// Machine-readable bench record. Collects named figures (doubles) and
/// notes (strings); write() emits
///   $TAP_BENCH_JSON/BENCH_<name>.json =
///   {"bench":..,"figures":{..},"notes":{..},"metrics":<obs::dump_json>}
/// and is a silent no-op when TAP_BENCH_JSON is unset, so interactive
/// runs behave exactly as before.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}
  ~BenchReporter() { write(); }

  void add(const std::string& key, double value) {
    figures_.emplace_back(key, value);
  }
  void note(const std::string& key, const std::string& value) {
    notes_.emplace_back(key, value);
  }

  /// Writes the record (once); returns the path written, or "".
  std::string write() {
    if (written_) return "";
    const char* dir = std::getenv("TAP_BENCH_JSON");
    if (dir == nullptr || *dir == '\0') return "";
    written_ = true;
    const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "BenchReporter: cannot write " << path << "\n";
      return "";
    }
    // Keys and notes are caller-supplied prose (model names, error
    // strings): escape everything interpolated into the document or one
    // quote/newline corrupts the whole record.
    out << "{\"bench\":\"" << util::json_escape(name_)
        << "\",\"figures\":{";
    for (std::size_t i = 0; i < figures_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << util::json_escape(figures_[i].first)
          << "\":" << util::fmt("%.17g", figures_[i].second);
    }
    out << "},\"notes\":{";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << util::json_escape(notes_[i].first) << "\":\""
          << util::json_escape(notes_[i].second) << "\"";
    }
    out << "},\"metrics\":" << obs::dump_json() << "}\n";
    std::cout << "bench record written to " << path << "\n";
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> figures_;
  std::vector<std::pair<std::string, std::string>> notes_;
  bool written_ = false;
};

}  // namespace tap::bench
