// Fig. 6: time breakdown for tensor-parallel plans of T5-large on 8 GPUs
// (one node, "8w") and 16 GPUs (two nodes over 32 Gbps Ethernet, "16w").
// The paper's observations to reproduce:
//   * inter-node communication is the main bottleneck — comm time blows up
//     from 8w to 16w for every plan;
//   * the best plan is not necessarily the one that splits every weight.
#include "bench_common.h"

int main() {
  using namespace tap;
  bench::header("Fig. 6 — compute/comm breakdown, T5-large", "paper Fig. 6");

  bench::Workload w = bench::t5_workload(24);  // T5-large depth
  util::Table table({"setting", "plan", "compute ms", "comm busy ms",
                     "exposed comm ms", "iteration ms"});

  struct Setting {
    const char* name;
    cost::ClusterSpec cluster;
  };
  const Setting settings[] = {
      {"8w", cost::ClusterSpec::v100_node()},
      {"16w", cost::ClusterSpec::v100_cluster(2)},
  };
  double comm_8w_dp = 0.0, comm_16w_dp = 0.0;
  for (const Setting& s : settings) {
    for (const char* plan : {"DP", "MHA", "FFN", "Megatron"}) {
      sim::StepBreakdown b = bench::simulate_expert(w, plan, s.cluster);
      table.add_row({s.name, plan, bench::ms(b.compute_s()),
                     bench::ms(b.comm_s), bench::ms(b.exposed_comm_s),
                     bench::ms(b.iteration_s)});
      if (std::string(plan) == "DP") {
        (std::string(s.name) == "8w" ? comm_8w_dp : comm_16w_dp) =
            b.exposed_comm_s + b.comm_s;
      }
    }
  }
  table.print(std::cout);
  std::printf("\nDP comm grows %.1fx from 8w to 16w — the bottleneck moves "
              "from PCIe to Ethernet (paper: \"the difference between\n"
              "communication time and computation time is further "
              "pronounced\").\n",
              comm_16w_dp / comm_8w_dp);
  return 0;
}
