// Fig. 15: training loss of M6-MoE-100B (128 GPUs) vs M6-MoE-1T (480
// GPUs). The loss curves come from the scaling-law simulator (no M6 data
// exists outside Alibaba — substitution documented in DESIGN.md); the
// reproduced claim is the ordering: 10x parameters at only 3.75x GPUs
// still reaches visibly lower loss within the same step budget.
#include "bench_common.h"
#include "sim/loss_curve.h"

int main() {
  using namespace tap;
  bench::header("Fig. 15 — M6-MoE convergence", "paper Fig. 15");

  Graph m100 = models::build_moe_transformer(models::m6_100b());
  Graph m1t = models::build_moe_transformer(models::m6_1t());
  std::printf("M6-MoE-100B: %s params on 128 GPUs; M6-MoE-1T: %s params on "
              "480 GPUs (%.1fx params, 3.75x GPUs)\n",
              util::human_count(static_cast<double>(m100.total_params()))
                  .c_str(),
              util::human_count(static_cast<double>(m1t.total_params()))
                  .c_str(),
              static_cast<double>(m1t.total_params()) /
                  static_cast<double>(m100.total_params()));

  sim::LossCurveConfig c100;
  c100.params = static_cast<double>(m100.total_params());
  c100.steps = 1000;
  sim::LossCurveConfig c1t = c100;
  c1t.params = static_cast<double>(m1t.total_params());
  c1t.seed = 8;
  auto l100 = sim::simulate_loss_curve(c100);
  auto l1t = sim::simulate_loss_curve(c1t);

  util::Table table({"step", "M6-MoE-100B loss", "M6-MoE-1T loss"});
  for (int s : {0, 50, 100, 200, 400, 600, 800, 999}) {
    table.add_row({std::to_string(s),
                   util::fmt("%.3f", l100[static_cast<std::size_t>(s)]),
                   util::fmt("%.3f", l1t[static_cast<std::size_t>(s)])});
  }
  table.print(std::cout);
  std::cout << "\nShape check: both curves decrease; the 1T curve sits "
               "below the 100B curve throughout (paper: \"significant model "
               "quality gain\").\n";
  return 0;
}
