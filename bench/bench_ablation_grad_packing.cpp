// Ablation (§4.7.1 / DESIGN.md decision 4): gradient-packing threshold μ.
// Sweeps μ and reports the number of gradient messages per step and the
// simulated iteration time for a data-parallel T5 on 16 Ethernet GPUs —
// the regime where per-message latency matters most.
#include "bench_common.h"
#include "rewrite/rewrite.h"

int main() {
  using namespace tap;
  bench::header("Ablation — gradient packing threshold sweep",
                "paper §4.7.1");

  cost::ClusterSpec cluster = cost::ClusterSpec::v100_cluster(2);
  bench::Workload w = bench::t5_workload(12);
  auto routed = sharding::route_plan(
      w.tg, baselines::data_parallel_plan(w.tg, cluster.world()));

  util::Table table({"mu", "chunk", "messages/step", "iter ms"});
  sim::SimOptions off;
  off.gradient_packing = false;
  auto b_off = sim::simulate_step(w.tg, routed, cluster.world(), cluster, off);
  table.add_row({"(packing off)", "-", std::to_string(b_off.comm_messages),
                 bench::ms(b_off.iteration_s)});

  for (std::int64_t mu :
       {64ll << 10, 512ll << 10, 4ll << 20, 16ll << 20, 64ll << 20}) {
    sim::SimOptions on;
    on.packing.fuse_threshold = mu;
    on.packing.chunk_bytes = std::max<std::int64_t>(4 * mu, 32ll << 20);
    auto b = sim::simulate_step(w.tg, routed, cluster.world(), cluster, on);
    table.add_row({util::human_bytes(static_cast<double>(mu)),
                   util::human_bytes(static_cast<double>(
                       on.packing.chunk_bytes)),
                   std::to_string(b.comm_messages),
                   bench::ms(b.iteration_s)});
  }
  table.print(std::cout);
  std::cout << "\nLarger mu folds more packets (fewer messages, less setup "
               "latency) until chunks grow so large that the pipelined "
               "weight update stalls — the trade-off §4.7.1 describes.\n";
  return 0;
}
